// Integration tests for CompressedStateSimulator: cross-validation against
// the dense reference simulator across gate placements (offset / block /
// rank segments), codecs, the adaptive ladder, measurement, and
// checkpointing.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "circuits/grover.hpp"
#include "circuits/phase_estimation.hpp"
#include "circuits/qaoa.hpp"
#include "circuits/qft.hpp"
#include "circuits/supremacy.hpp"
#include "common/rng.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"
#include "test_util.hpp"

namespace cqs::core {
namespace {

using qsim::GateKind;

/// Fidelity between the compressed simulator's state and a dense reference
/// run of the same circuit.
double cross_fidelity(CompressedStateSimulator& sim,
                      const qsim::Circuit& circuit) {
  qsim::StateVector reference(circuit.num_qubits());
  reference.apply_circuit(circuit);
  const auto raw = sim.to_raw();
  return qsim::state_fidelity(reference.raw(), raw);
}

SimConfig small_config(int qubits, int ranks = 4, int blocks = 4) {
  SimConfig config;
  config.num_qubits = qubits;
  config.num_ranks = ranks;
  config.blocks_per_rank = blocks;
  config.threads = 4;
  return config;
}

TEST(SimulatorTest, InitialStateIsZeroKet) {
  CompressedStateSimulator sim(small_config(10));
  const auto amps = sim.to_amplitudes();
  EXPECT_NEAR(std::abs(amps[0]), 1.0, 1e-12);
  EXPECT_NEAR(sim.norm(), 1.0, 1e-12);
}

TEST(SimulatorTest, MatchesDenseOnEverySingleQubitPlacement) {
  // One Hadamard per qubit position: exercises the offset, block, and rank
  // target segments (10 qubits = 5 offset + 3 block + 2 rank bits).
  for (int q = 0; q < 10; ++q) {
    auto config = small_config(10, 4, 8);
    CompressedStateSimulator sim(config);
    qsim::Circuit c(10);
    c.h(q).t(q).h(q);
    sim.apply_circuit(c);
    EXPECT_NEAR(cross_fidelity(sim, c), 1.0, 1e-10) << "qubit " << q;
  }
}

TEST(SimulatorTest, MatchesDenseOnControlledGateAllPlacements) {
  // CX over (control, target) pairs spanning all segment combinations.
  const int pairs[][2] = {{0, 1}, {1, 6}, {6, 1}, {6, 8}, {8, 6},
                          {0, 9}, {9, 0}, {5, 7}, {8, 9}, {9, 4}};
  for (const auto& [ctrl, tgt] : pairs) {
    CompressedStateSimulator sim(small_config(10, 4, 8));
    qsim::Circuit c(10);
    c.h(ctrl).cx(ctrl, tgt).rz(tgt, 0.7).cx(ctrl, tgt);
    sim.apply_circuit(c);
    EXPECT_NEAR(cross_fidelity(sim, c), 1.0, 1e-10)
        << "cx " << ctrl << "->" << tgt;
  }
}

TEST(SimulatorTest, MatchesDenseOnToffoliAcrossSegments) {
  const int triples[][3] = {{0, 1, 2}, {0, 6, 9}, {6, 8, 0}, {8, 9, 5}};
  for (const auto& [c0, c1, t] : triples) {
    CompressedStateSimulator sim(small_config(10, 4, 8));
    qsim::Circuit c(10);
    c.h(c0).h(c1).ccx(c0, c1, t);
    sim.apply_circuit(c);
    EXPECT_NEAR(cross_fidelity(sim, c), 1.0, 1e-10)
        << c0 << "," << c1 << "->" << t;
  }
}

TEST(SimulatorTest, SwapDecompositionMatchesDense) {
  CompressedStateSimulator sim(small_config(10, 4, 8));
  qsim::Circuit c(10);
  c.h(0).t(0).swap(0, 9).swap(3, 6);
  sim.apply_circuit(c);
  EXPECT_NEAR(cross_fidelity(sim, c), 1.0, 1e-10);
}

TEST(SimulatorTest, LosslessRunHasExactFidelity) {
  CompressedStateSimulator sim(small_config(12));
  const auto c = circuits::qft_circuit({.num_qubits = 12});
  sim.apply_circuit(c);
  EXPECT_DOUBLE_EQ(sim.fidelity_bound(), 1.0);
  EXPECT_EQ(sim.ladder_level(), 0);
  EXPECT_NEAR(cross_fidelity(sim, c), 1.0, 1e-9);
}

TEST(SimulatorTest, GroverMatchesDense) {
  const auto c = circuits::grover_circuit(
      {.data_qubits = 7, .marked_state = 0b1011001});
  CompressedStateSimulator sim(small_config(c.num_qubits(), 2, 4));
  sim.apply_circuit(c);
  EXPECT_NEAR(cross_fidelity(sim, c), 1.0, 1e-9);
  EXPECT_GT(sim.report().cache.hits, 0u)
      << "Grover states repeat blocks; the cache should hit";
}

TEST(SimulatorTest, SupremacyCircuitMatchesDense) {
  const auto c =
      circuits::supremacy_circuit({.rows = 3, .cols = 4, .depth = 11});
  CompressedStateSimulator sim(small_config(12, 4, 4));
  sim.apply_circuit(c);
  EXPECT_NEAR(cross_fidelity(sim, c), 1.0, 1e-9);
}

class CodecSimulationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CodecSimulationTest, LossyRunStaysAboveFidelityBound) {
  // Force the ladder to a lossy level from the start and check the
  // measured fidelity respects the tracked lower bound (Eq. 11).
  SimConfig config = small_config(11, 2, 4);
  config.codec = GetParam();
  config.initial_level = 2;  // ladder[1] = 1e-4
  CompressedStateSimulator sim(config);
  const auto c = circuits::qaoa_maxcut_circuit({.num_qubits = 11});
  sim.apply_circuit(c);

  const double bound = sim.fidelity_bound();
  EXPECT_LT(bound, 1.0);
  EXPECT_GT(bound, 0.9) << "1e-4 over a few hundred gates stays high";
  const double measured = cross_fidelity(sim, c);
  EXPECT_GE(measured + 1e-12, bound);
  EXPECT_GT(measured, 0.99);
}

INSTANTIATE_TEST_SUITE_P(AllLossyCodecs, CodecSimulationTest,
                         ::testing::Values("qzc", "qzc-shuffle", "sz",
                                           "sz-complex", "zfp", "fpzip"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(SimulatorTest, AdaptiveLadderEscalatesUnderBudget) {
  // A dense random state under a tight budget must leave lossless mode.
  SimConfig config = small_config(12, 2, 4);
  config.memory_budget_bytes = 20 << 10;  // 20 KB for a 64 KB raw state
  CompressedStateSimulator sim(config);
  const auto c =
      circuits::supremacy_circuit({.rows = 3, .cols = 4, .depth = 8});
  sim.apply_circuit(c);
  EXPECT_GT(sim.ladder_level(), 0) << "budget must force lossy compression";
  EXPECT_LT(sim.fidelity_bound(), 1.0);
  EXPECT_GT(sim.fidelity_bound(), 0.5);
  // The state must actually fit (or the run must say it could not).
  const auto report = sim.report();
  if (!report.budget_exceeded) {
    EXPECT_LE(sim.compressed_bytes(), config.memory_budget_bytes);
  }
}

TEST(SimulatorTest, LadderNeverEscalatesWithoutBudgetPressure) {
  SimConfig config = small_config(12, 2, 4);
  config.memory_budget_bytes = 0;
  CompressedStateSimulator sim(config);
  sim.apply_circuit(
      circuits::supremacy_circuit({.rows = 3, .cols = 4, .depth = 8}));
  EXPECT_EQ(sim.ladder_level(), 0);
  EXPECT_DOUBLE_EQ(sim.fidelity_bound(), 1.0);
}

TEST(SimulatorTest, ProbabilityMatchesDenseAcrossSegments) {
  const auto c = circuits::qaoa_maxcut_circuit({.num_qubits = 10});
  CompressedStateSimulator sim(small_config(10, 4, 8));
  sim.apply_circuit(c);
  qsim::StateVector reference(10);
  reference.apply_circuit(c);
  for (int q = 0; q < 10; ++q) {
    EXPECT_NEAR(sim.probability_one(q), reference.probability_one(q), 1e-9)
        << "qubit " << q;
  }
}

TEST(SimulatorTest, IntermediateMeasurementCollapses) {
  // Bell pair over a rank-segment qubit: measurement of qubit 0 must fix
  // qubit 9 to the same value.
  CompressedStateSimulator sim(small_config(10, 4, 8));
  qsim::Circuit c(10);
  c.h(0).cx(0, 9);
  sim.apply_circuit(c);
  Rng rng(5);
  const int outcome = sim.measure(0, rng);
  EXPECT_NEAR(sim.probability_one(9), static_cast<double>(outcome), 1e-9);
  EXPECT_NEAR(sim.norm(), 1.0, 1e-9);
}

TEST(SimulatorTest, AssertProbabilityForDebugging) {
  CompressedStateSimulator sim(small_config(10));
  qsim::Circuit c(10);
  c.h(3);
  sim.apply_circuit(c);
  EXPECT_TRUE(sim.assert_probability(3, 0.5, 1e-9));
  EXPECT_TRUE(sim.assert_probability(0, 0.0, 1e-9));
  EXPECT_FALSE(sim.assert_probability(3, 0.9, 0.1));
}

using SimulatorCheckpointTest = test::TempDirFixture;

TEST_F(SimulatorCheckpointTest, CheckpointResumeProducesSameState) {
  const auto c = circuits::qft_circuit({.num_qubits = 10});
  const std::string path = this->path("sim_checkpoint.bin");

  // Full run.
  CompressedStateSimulator full(small_config(10, 2, 4));
  full.apply_circuit(c);

  // Split run: first half, checkpoint, restore, second half.
  CompressedStateSimulator first(small_config(10, 2, 4));
  qsim::Circuit half(10);
  const auto& ops = c.ops();
  for (std::size_t i = 0; i < ops.size() / 2; ++i) half.append(ops[i]);
  first.apply_circuit(half);
  first.save_checkpoint(path);

  auto resumed =
      CompressedStateSimulator::load_checkpoint(path, small_config(10, 2, 4));
  EXPECT_EQ(resumed.gate_cursor(), ops.size() / 2);
  resumed.resume_circuit(c);  // resumes from the cursor

  const auto a = full.to_raw();
  const auto b = resumed.to_raw();
  EXPECT_NEAR(qsim::state_fidelity(a, b), 1.0, 1e-10);
  CQS_EXPECT_STATES_CLOSE(a, b, 1e-12);
}

TEST(SimulatorTest, RankConfigurationsAgree) {
  // The same circuit over different rank/block shapes must give the same
  // state — the partition is an implementation detail.
  const auto c = circuits::qaoa_maxcut_circuit({.num_qubits = 10});
  std::vector<double> reference;
  for (const auto& [ranks, blocks] : {std::pair{1, 1}, {1, 8}, {4, 4},
                                      {8, 2}, {16, 2}}) {
    CompressedStateSimulator sim(small_config(10, ranks, blocks));
    sim.apply_circuit(c);
    const auto raw = sim.to_raw();
    if (reference.empty()) {
      reference = raw;
    } else {
      EXPECT_NEAR(qsim::state_fidelity(reference, raw), 1.0, 1e-10)
          << ranks << "x" << blocks;
    }
  }
}

TEST(SimulatorTest, CrossRankGatesGenerateTraffic) {
  CompressedStateSimulator sim(small_config(10, 4, 4));
  qsim::Circuit c(10);
  c.h(9);  // rank-segment target
  sim.apply_circuit(c);
  const auto report = sim.report();
  EXPECT_GT(report.comm_bytes, 0u);
  EXPECT_GT(report.comm_messages, 0u);

  CompressedStateSimulator local(small_config(10, 4, 4));
  qsim::Circuit c2(10);
  c2.h(0);  // offset-segment target: no traffic
  local.apply_circuit(c2);
  EXPECT_EQ(local.report().comm_bytes, 0u);
}

TEST(SimulatorTest, CrossRankTrafficIsOneExchangeOfBothInputsPerPair) {
  // 8 qubits over 2 ranks x 1 block: a rank-segment gate touches exactly
  // one block pair, and the wire must carry exactly one buffered sendrecv
  // — both compressed *input* blocks, 2 messages — with no push-back leg.
  SimConfig config = small_config(8, 2, 1);
  config.codec = "zstd";  // lossless: payload sizes are reproducible
  CompressedStateSimulator sim(config);
  qsim::Circuit c(8);
  c.h(7);
  sim.apply_circuit(c);

  const auto codec = compression::make_compressor("zstd");
  std::vector<double> zeros(1 << 8, 0.0);  // 2^7 amplitudes, re/im pairs
  const auto zero_block =
      codec->compress(zeros, compression::ErrorBound::lossless());
  zeros[0] = 1.0;
  const auto one_block =
      codec->compress(zeros, compression::ErrorBound::lossless());

  const auto report = sim.report();
  EXPECT_EQ(report.comm_messages, 2u);
  EXPECT_EQ(report.comm_bytes, zero_block.size() + one_block.size());
}

TEST(SimulatorTest, ReportAccounting) {
  CompressedStateSimulator sim(small_config(10, 2, 4));
  const auto c = circuits::qft_circuit({.num_qubits = 10});
  sim.apply_circuit(c);
  const auto report = sim.report();
  EXPECT_EQ(report.gates, c.size());
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GT(report.phases.total(), 0.0);
  EXPECT_GT(report.min_compression_ratio, 0.0);
  EXPECT_GT(report.peak_compressed_bytes, 0u);
  EXPECT_EQ(report.memory_requirement_bytes, 1u << 14);  // 2^{10+4}
  EXPECT_EQ(report.num_qubits, 10);
}

TEST(SimulatorTest, RejectsBadConfigs) {
  SimConfig config;
  config.num_qubits = 8;
  config.num_ranks = 3;  // not a power of two
  EXPECT_THROW(CompressedStateSimulator{config}, std::invalid_argument);

  config = SimConfig{};
  config.num_qubits = 8;
  config.codec = "zstd";
  config.initial_level = 1;  // lossless codec cannot be lossy
  EXPECT_THROW(CompressedStateSimulator{config}, std::invalid_argument);

  config = SimConfig{};
  config.num_qubits = 8;
  config.error_ladder = {1e-2, 1e-4};  // not ascending
  EXPECT_THROW(CompressedStateSimulator{config}, std::invalid_argument);
}

TEST(SimulatorTest, ZstdOnlySimulationStaysLossless) {
  SimConfig config = small_config(10, 2, 4);
  config.codec = "zstd";
  config.memory_budget_bytes = 1;  // impossible budget
  CompressedStateSimulator sim(config);
  qsim::Circuit c(10);
  for (int q = 0; q < 10; ++q) c.h(q);
  sim.apply_circuit(c);
  EXPECT_DOUBLE_EQ(sim.fidelity_bound(), 1.0);
  EXPECT_TRUE(sim.report().budget_exceeded);
}

// ------------------------------------------------ qubit-remap differential
//
// Every bundled circuit family runs remap-on against remap-off (and the
// per-gate seed path): at the lossless level the final logical states must
// be bit-identical — remapping only moves where amplitudes live, never
// what they are — and on rank-heavy circuits the remapped run must move
// strictly fewer bytes through Comm.

struct RemapCase {
  const char* name;
  qsim::Circuit circuit;
};

std::vector<RemapCase> remap_cases() {
  std::vector<RemapCase> cases;
  cases.push_back({"qft", circuits::qft_circuit({.num_qubits = 10})});
  cases.push_back(
      {"grover", circuits::grover_circuit(
                     {.data_qubits = 5, .marked_state = 0b10110,
                      .iterations = 2})});  // 9 qubits
  cases.push_back({"qaoa", circuits::qaoa_maxcut_circuit({.num_qubits = 9})});
  cases.push_back(
      {"phase_estimation",
       circuits::phase_estimation_circuit({.counting_qubits = 8})});
  cases.push_back({"supremacy", circuits::supremacy_circuit(
                                    {.rows = 3, .cols = 3, .depth = 8})});
  return cases;
}

TEST(QubitRemapTest, RemapOnMatchesRemapOffBitwiseOnAllCircuits) {
  for (auto& test_case : remap_cases()) {
    SimConfig off = small_config(test_case.circuit.num_qubits());
    SimConfig on = off;
    on.enable_qubit_remap = true;

    CompressedStateSimulator sim_off(off);
    CompressedStateSimulator sim_on(on);
    sim_off.apply_circuit(test_case.circuit);
    sim_on.apply_circuit(test_case.circuit);
    CQS_EXPECT_STATES_CLOSE(sim_on.to_raw(), sim_off.to_raw(), 0.0)
        << test_case.name;

    // Identical logical gate accounting and fidelity (lossless run).
    const auto rep_off = sim_off.report();
    const auto rep_on = sim_on.report();
    EXPECT_EQ(rep_on.gates, rep_off.gates) << test_case.name;
    EXPECT_DOUBLE_EQ(rep_on.fidelity_bound, 1.0) << test_case.name;
    EXPECT_LE(rep_on.comm_bytes, rep_off.comm_bytes) << test_case.name;
  }
}

TEST(QubitRemapTest, RemapMatchesSeedPerGatePathAndLruPolicy) {
  // Bitwise equality holds against the reference with the same fusion
  // setting: fusion itself reorders single-qubit arithmetic (a PR 2
  // property independent of remapping), so the per-gate seed path is the
  // reference for unbatched runs and the batched remap-off path for
  // batched ones.
  for (auto& test_case : remap_cases()) {
    SimConfig seed = small_config(test_case.circuit.num_qubits());
    seed.enable_run_batching = false;  // the pre-PR2 per-gate path
    seed.enable_fusion_prepass = false;
    CompressedStateSimulator per_gate_reference(seed);
    per_gate_reference.apply_circuit(test_case.circuit);
    const auto per_gate_expected = per_gate_reference.to_raw();

    CompressedStateSimulator batched_reference(
        small_config(test_case.circuit.num_qubits()));
    batched_reference.apply_circuit(test_case.circuit);
    const auto batched_expected = batched_reference.to_raw();

    for (const char* policy : {"lookahead", "lru"}) {
      for (const bool batching : {true, false}) {
        SimConfig on = small_config(test_case.circuit.num_qubits());
        on.enable_qubit_remap = true;
        on.remap_policy = policy;
        on.enable_run_batching = batching;
        if (!batching) on.enable_fusion_prepass = false;
        CompressedStateSimulator sim(on);
        sim.apply_circuit(test_case.circuit);
        CQS_EXPECT_STATES_CLOSE(
            sim.to_raw(), batching ? batched_expected : per_gate_expected,
            0.0)
            << test_case.name << " policy=" << policy
            << " batching=" << batching;
      }
    }
  }
}

TEST(QubitRemapTest, RemapBitIdenticalAcrossRankConfigs) {
  // Degenerate partitions included: at 1 rank there is no rank segment at
  // all (relabeled swaps are the only map activity), at 8 ranks the rank
  // segment is a third of the qubits.
  const auto circuit = circuits::qft_circuit({.num_qubits = 9});
  for (int ranks : {1, 2, 4, 8}) {
    SimConfig off = small_config(9, ranks, 2);
    SimConfig on = off;
    on.enable_qubit_remap = true;
    CompressedStateSimulator sim_off(off);
    CompressedStateSimulator sim_on(on);
    sim_off.apply_circuit(circuit);
    sim_on.apply_circuit(circuit);
    CQS_EXPECT_STATES_CLOSE(sim_on.to_raw(), sim_off.to_raw(), 0.0)
        << ranks << " ranks";
    EXPECT_LE(sim_on.report().comm_bytes, sim_off.report().comm_bytes)
        << ranks << " ranks";
  }
}

TEST(QubitRemapTest, RankHeavyCircuitMovesStrictlyFewerBytes) {
  // QFT's random-X prelude, H ladder, and reversal swaps all hit the rank
  // segment at 4 ranks: remap must strictly reduce exchanged bytes, with
  // the reversal swaps absorbed as relabels.
  const auto circuit = circuits::qft_circuit({.num_qubits = 10});
  SimConfig off = small_config(10);
  SimConfig on = off;
  on.enable_qubit_remap = true;
  CompressedStateSimulator sim_off(off);
  CompressedStateSimulator sim_on(on);
  sim_off.apply_circuit(circuit);
  sim_on.apply_circuit(circuit);
  const auto rep_off = sim_off.report();
  const auto rep_on = sim_on.report();
  ASSERT_GT(rep_off.comm_bytes, 0u);
  EXPECT_LT(rep_on.comm_bytes, rep_off.comm_bytes);
  EXPECT_LT(rep_on.comm_messages, rep_off.comm_messages);
  EXPECT_GT(rep_on.swaps_relabeled, 0u);
  EXPECT_GT(rep_on.remap_exchanges_avoided, 0u);
  EXPECT_FALSE(sim_on.qubit_map().is_identity());
}

TEST(QubitRemapTest, LossyRemapStaysWithinTheFidelityBound) {
  // At a lossy level remap-on and remap-off compress different block
  // partitions of the same state, so bitwise equality no longer holds;
  // the Eq. 11 product of both runs' bounds still floors their overlap.
  const auto circuit = circuits::qft_circuit({.num_qubits = 10});
  SimConfig off = small_config(10);
  off.initial_level = 1;  // 1e-5 relative
  SimConfig on = off;
  on.enable_qubit_remap = true;
  CompressedStateSimulator sim_off(off);
  CompressedStateSimulator sim_on(on);
  sim_off.apply_circuit(circuit);
  sim_on.apply_circuit(circuit);
  const double fidelity =
      qsim::state_fidelity(sim_on.to_raw(), sim_off.to_raw());
  const double floor = sim_on.report().fidelity_bound *
                       sim_off.report().fidelity_bound;
  EXPECT_GE(fidelity, floor - 1e-9);
}

TEST(QubitRemapTest, QueriesSpeakLogicalIndicesUnderRemap) {
  // X gates + reversal swaps give a known basis state; with remap on, the
  // swaps become relabels and the map goes non-identity, so
  // probability_one / measure / sample / expectation answers must all be
  // translated back to logical indices.
  SimConfig config = small_config(8);
  config.enable_qubit_remap = true;
  CompressedStateSimulator sim(config);
  qsim::Circuit c(8);
  c.x(7).x(5).x(0);
  for (int q = 0; q < 4; ++q) c.swap(q, 7 - q);
  sim.apply_circuit(c);
  ASSERT_FALSE(sim.qubit_map().is_identity());

  // |10100001> reversed: bits 7,5,0 set, then reversal maps q -> 7-q.
  const std::uint64_t expected = (1u << 0) | (1u << 2) | (1u << 7);
  for (int q = 0; q < 8; ++q) {
    const double expected_p = (expected >> q) & 1 ? 1.0 : 0.0;
    EXPECT_NEAR(sim.probability_one(q), expected_p, 1e-12) << "qubit " << q;
  }
  Rng rng(11);
  EXPECT_EQ(sim.sample(rng), expected);
  EXPECT_NEAR(sim.expectation_pauli_z((1u << 0) | (1u << 1)), -1.0, 1e-12);
  EXPECT_EQ(sim.measure(0, rng), 1);
  EXPECT_EQ(sim.measure(1, rng), 0);
}

TEST(QubitRemapTest, AdHocApplyAndResumeTranslateThroughTheMap) {
  // After a circuit whose swaps were relabeled, ad-hoc gates and resumed
  // circuits still arrive in logical coordinates.
  SimConfig config = small_config(8);
  config.enable_qubit_remap = true;
  CompressedStateSimulator remapped(config);
  CompressedStateSimulator plain(small_config(8));

  qsim::Circuit prelude(8);
  prelude.h(0).cx(0, 4).swap(0, 7).swap(1, 6);
  remapped.apply_circuit(prelude);
  plain.apply_circuit(prelude);
  ASSERT_FALSE(remapped.qubit_map().is_identity());

  remapped.apply({GateKind::kH, 7});
  plain.apply({GateKind::kH, 7});
  remapped.apply({GateKind::kCX, 6, {7, -1}});
  plain.apply({GateKind::kCX, 6, {7, -1}});
  CQS_EXPECT_STATES_CLOSE(remapped.to_raw(), plain.to_raw(), 0.0);
}

TEST(QubitRemapTest, RejectsUnknownRemapPolicy) {
  SimConfig config = small_config(8);
  config.remap_policy = "clairvoyant";
  EXPECT_THROW(CompressedStateSimulator{config}, std::invalid_argument);
}

}  // namespace
}  // namespace cqs::core
