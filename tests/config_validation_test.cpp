// SimConfig validation: every misconfiguration must be rejected at
// simulator construction with a clear std::invalid_argument, never
// deferred to a mid-run crash — and the error text must name the problem.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/simulator.hpp"

namespace cqs {
namespace {

using core::CompressedStateSimulator;
using core::SimConfig;

SimConfig base_config() {
  SimConfig config;
  config.num_qubits = 8;
  config.num_ranks = 2;
  config.blocks_per_rank = 2;
  return config;
}

/// Asserts construction throws std::invalid_argument whose message
/// contains `needle` (so failures point at the right knob).
void expect_rejected(const SimConfig& config, const std::string& needle) {
  try {
    CompressedStateSimulator sim(config);
    FAIL() << "config was accepted; expected message containing '" << needle
           << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(ConfigValidationTest, AcceptsTheDefaults) {
  EXPECT_NO_THROW(CompressedStateSimulator{base_config()});
}

TEST(ConfigValidationTest, RejectsOutOfRangePipelineDepth) {
  for (int depth : {0, -1, 65, 100}) {
    SimConfig config = base_config();
    config.pipeline_depth = depth;
    expect_rejected(config, "pipeline_depth");
  }
  // The depth range is validated even with the pipeline off: a bad knob
  // is a bad config, not a latent bug for the first multi-threaded run.
  SimConfig config = base_config();
  config.enable_pipeline = false;
  config.pipeline_depth = 0;
  expect_rejected(config, "pipeline_depth");
  // Boundary values are fine.
  config = base_config();
  config.pipeline_depth = 1;
  EXPECT_NO_THROW(CompressedStateSimulator{config});
  config.pipeline_depth = 64;
  EXPECT_NO_THROW(CompressedStateSimulator{config});
}

TEST(ConfigValidationTest, RejectsNonPowerOfTwoRanks) {
  for (int ranks : {3, 5, 6, 7, 12}) {
    SimConfig config = base_config();
    config.num_ranks = ranks;
    expect_rejected(config, "power of two");
  }
  SimConfig config = base_config();
  config.num_ranks = 0;
  expect_rejected(config, "power of two");
  config.num_ranks = -2;
  expect_rejected(config, "power of two");
}

TEST(ConfigValidationTest, RejectsNonPowerOfTwoBlocksPerRank) {
  for (int blocks : {3, 5, 6, 7, 12}) {
    SimConfig config = base_config();
    config.blocks_per_rank = blocks;
    expect_rejected(config, "power of two");
  }
  SimConfig config = base_config();
  config.blocks_per_rank = 0;
  expect_rejected(config, "power of two");
}

TEST(ConfigValidationTest, RejectsPartitionLargerThanTheState) {
  SimConfig config = base_config();
  config.num_ranks = 16;
  config.blocks_per_rank = 16;  // 8 qubits cannot fill 256 blocks
  expect_rejected(config, "exceeds state size");
}

TEST(ConfigValidationTest, RejectsEmptyErrorLadder) {
  SimConfig config = base_config();
  config.error_ladder.clear();
  expect_rejected(config, "ladder must not be empty");
}

TEST(ConfigValidationTest, RejectsOutOfRangeLadderBounds) {
  SimConfig config = base_config();
  config.error_ladder = {1e-5, 1.5};
  expect_rejected(config, "must be in (0,1)");
  config.error_ladder = {0.0, 1e-4};
  expect_rejected(config, "must be in (0,1)");
  config.error_ladder = {-1e-3};
  expect_rejected(config, "must be in (0,1)");
}

TEST(ConfigValidationTest, RejectsUnsortedErrorLadder) {
  SimConfig config = base_config();
  config.error_ladder = {1e-2, 1e-4};
  expect_rejected(config, "sorted ascending");
}

TEST(ConfigValidationTest, RejectsUnknownCodecName) {
  SimConfig config = base_config();
  config.codec = "lz4-turbo";
  expect_rejected(config, "unknown codec 'lz4-turbo'");
}

TEST(ConfigValidationTest, RejectsLossyStartWithLosslessCodec) {
  SimConfig config = base_config();
  config.codec = "zstd";
  config.initial_level = 1;
  expect_rejected(config, "cannot start at a lossy level");
}

TEST(ConfigValidationTest, RejectsUnknownCodecPolicy) {
  SimConfig config = base_config();
  config.codec_policy = "oracle";
  expect_rejected(config, "unknown policy 'oracle'");
}

TEST(ConfigValidationTest, RejectsBadAdaptiveThresholds) {
  SimConfig config = base_config();
  config.adaptive_zero_fraction = 1.5;
  expect_rejected(config, "adaptive_zero_fraction");

  config = base_config();
  config.adaptive_zero_fraction = -0.1;
  expect_rejected(config, "adaptive_zero_fraction");

  config = base_config();
  config.adaptive_dynamic_range = -1.0;
  expect_rejected(config, "adaptive_dynamic_range");

  config = base_config();
  config.adaptive_spikiness = 1.0;  // max/mean ratio is always >= 1
  expect_rejected(config, "adaptive_spikiness");

  config = base_config();
  config.adaptive_hysteresis = 0.5;
  expect_rejected(config, "adaptive_hysteresis");

  config = base_config();
  config.adaptive_hysteresis = -0.01;
  expect_rejected(config, "adaptive_hysteresis");
}

TEST(ConfigValidationTest, AdaptiveKnobsAreValidatedEvenUnderFixedPolicy) {
  // A bad threshold is a bad config regardless of which policy is active
  // today — catching it early keeps a later policy flip from exploding.
  SimConfig config = base_config();
  config.codec_policy = "fixed";
  config.adaptive_hysteresis = 0.7;
  expect_rejected(config, "adaptive_hysteresis");
}

TEST(ConfigValidationTest, RejectsQubitCountsOutsideSupportedRange) {
  SimConfig config = base_config();
  config.num_qubits = 0;
  expect_rejected(config, "qubits");
  config.num_qubits = 41;
  expect_rejected(config, "qubits");
}

TEST(ConfigValidationTest, RejectsUnknownRemapPolicy) {
  SimConfig config = base_config();
  config.enable_qubit_remap = true;
  config.remap_policy = "soonest";
  expect_rejected(config, "remap policy");
}

TEST(ConfigValidationTest, RemapPolicyValidatedEvenWhenRemapDisabled) {
  // Same reasoning as the adaptive knobs: a config that would explode the
  // moment remapping (or a v4 resume) turns it on is rejected up front.
  SimConfig config = base_config();
  config.enable_qubit_remap = false;
  config.remap_policy = "";
  expect_rejected(config, "remap policy");
}

TEST(ConfigValidationTest, AcceptsBothRemapPolicies) {
  for (const char* policy : {"lookahead", "lru"}) {
    SimConfig config = base_config();
    config.enable_qubit_remap = true;
    config.remap_policy = policy;
    config.remap_relabel_swaps = false;
    EXPECT_NO_THROW(CompressedStateSimulator{config}) << policy;
  }
}

TEST(ConfigValidationTest, RejectsUnknownTransportName) {
  SimConfig config = base_config();
  config.transport = "carrier-pigeon";
  expect_rejected(config, "unknown transport 'carrier-pigeon'");
}

TEST(ConfigValidationTest, RejectsNonPositiveRankTimeout) {
  // Validated whatever the transport: loopback never blocks on a wire,
  // but a non-positive deadline would make any process transport hang or
  // fail instantly the moment a config flips to it.
  for (int timeout : {0, -1, -5000}) {
    SimConfig config = base_config();
    config.rank_timeout_ms = timeout;
    expect_rejected(config, "rank_timeout_ms");
  }
}

TEST(ConfigValidationTest, RejectsUnknownSocketEndpoint) {
  SimConfig config = base_config();
  config.socket_endpoint = "infiniband";
  expect_rejected(config, "unknown socket_endpoint 'infiniband'");
}

TEST(ConfigValidationTest, RejectsSocketTransportOnOneRank) {
  // A single-rank run has no cross-rank wire; forking an endpoint fleet
  // for it would only hide a misconfigured scaling study.
  SimConfig config = base_config();
  config.transport = "socket";
  config.num_ranks = 1;
  expect_rejected(config, "requires num_ranks >= 2");
}

TEST(ConfigValidationTest, RejectsOutOfRangeZfpFixedPrecision) {
  // Rejected here, not silently clamped inside the codec: a plane count
  // outside [0, 62] would otherwise quietly encode at a different
  // precision than the config claims.
  for (int planes : {-1, -10, 63, 1000}) {
    SimConfig config = base_config();
    config.codec = "zfp";
    config.zfp_fixed_precision = planes;
    expect_rejected(config, "zfp_fixed_precision");
  }
  // Boundary values are fine on both zfp-family codecs.
  for (const char* codec : {"zfp", "zfp-rans"}) {
    SimConfig config = base_config();
    config.codec = codec;
    config.zfp_fixed_precision = 62;
    EXPECT_NO_THROW(CompressedStateSimulator{config});
  }
}

TEST(ConfigValidationTest, RejectsBothZfpRateControlModesAtOnce) {
  SimConfig config = base_config();
  config.codec = "zfp";
  config.zfp_fixed_precision = 16;
  config.zfp_fixed_accuracy = true;
  expect_rejected(config, "mutually exclusive");
}

TEST(ConfigValidationTest, RejectsZfpKnobsOnNonZfpCodecs) {
  for (const char* codec : {"qzc", "sz", "zstd", "fpzip"}) {
    SimConfig config = base_config();
    config.codec = codec;
    config.zfp_fixed_precision = 16;
    expect_rejected(config, "zfp-family");
    config = base_config();
    config.codec = codec;
    config.zfp_fixed_accuracy = true;
    expect_rejected(config, "zfp-family");
  }
}

TEST(ConfigValidationTest, AcceptsZfpRateControlModesOnZfpFamily) {
  for (const char* codec : {"zfp", "zfp-rans"}) {
    SimConfig config = base_config();
    config.codec = codec;
    config.zfp_fixed_accuracy = true;
    EXPECT_NO_THROW(CompressedStateSimulator{config});
    config = base_config();
    config.codec = codec;
    config.zfp_fixed_precision = 16;
    EXPECT_NO_THROW(CompressedStateSimulator{config});
  }
}

}  // namespace
}  // namespace cqs
