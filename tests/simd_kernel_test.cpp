// Property tests pinning every SIMD apply kernel byte-for-byte against its
// scalar reference: all fused matrix shapes, aligned and unaligned
// buffers, vector-tail lengths, denormal inputs, and the control-mask
// demotion path. Plus the golden-bitstream leg: a CQS_NATIVE (or any SIMD)
// build must leave the recorded codec digests and checkpoint bytes
// untouched — the kernels change the schedule of identical IEEE ops, never
// the values.
#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "circuits/qft.hpp"
#include "common/rng.hpp"
#include "compression/golden_blobs.hpp"
#include "core/simulator.hpp"
#include "qsim/gates.hpp"
#include "test_util.hpp"

namespace cqs::qsim {
namespace {

/// The widest non-scalar backend this build + CPU offers; tests skip when
/// only the scalar path exists (then there is nothing to differentiate).
KernelBackend simd_backend() { return detect_kernel_backend(true); }

std::vector<Amplitude> random_amps(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Amplitude> amps(count);
  for (auto& a : amps) {
    a = Amplitude(rng.next_double() * 2.0 - 1.0,
                  rng.next_double() * 2.0 - 1.0);
  }
  // Sprinkle exact zeros and denormals: the kernels must not rely on
  // flush-to-zero and must reproduce gradual underflow bit-for-bit.
  for (std::size_t i = 0; i < count; i += 7) {
    amps[i] = Amplitude(5e-320, -3e-321);
  }
  for (std::size_t i = 3; i < count; i += 11) {
    amps[i] = Amplitude(0.0, 0.0);
  }
  return amps;
}

bool bytes_equal(const std::vector<Amplitude>& a,
                 const std::vector<Amplitude>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(Amplitude)) == 0;
}

/// Representative fused-run matrix shapes: real symmetric (H), permutation
/// (X), imaginary off-diagonal (Y), pure-phase diagonals, rotations, the
/// supremacy set, and a fully generic globally-phased U3.
std::vector<Mat2> matrix_shapes() {
  return {
      gate_matrix({GateKind::kH, 0}),
      gate_matrix({GateKind::kX, 0}),
      gate_matrix({GateKind::kY, 0}),
      gate_matrix({GateKind::kT, 0}),
      gate_matrix({GateKind::kRz, 0, {-1, -1}, {0.7}}),
      gate_matrix({GateKind::kRy, 0, {-1, -1}, {1.3}}),
      gate_matrix({GateKind::kSqrtW, 0}),
      gate_matrix({GateKind::kU3G, 0, {-1, -1}, {0.9, 0.4, 1.7, 2.2}}),
  };
}

TEST(SimdKernelTest, ScaleKernelBitIdenticalAcrossLengthsAndAlignment) {
  if (simd_backend() == KernelBackend::kScalar) {
    GTEST_SKIP() << "no SIMD backend compiled in / supported by this CPU";
  }
  const Amplitude factors[] = {Amplitude(0.3, -0.8), Amplitude(-1.0, 0.0),
                               Amplitude(7e-310, 2e-312)};
  for (const Amplitude factor : factors) {
    for (const std::size_t count : {2u, 3u, 7u, 8u, 32u, 33u, 255u}) {
      for (const std::size_t offset : {0u, 1u}) {  // 1 breaks 32B alignment
        auto scalar = random_amps(count + offset, 1000 + count);
        auto simd = scalar;
        scale_kernel(scalar.data() + offset, count, factor, 0,
                     KernelBackend::kScalar);
        scale_kernel(simd.data() + offset, count, factor, 0, simd_backend());
        EXPECT_TRUE(bytes_equal(scalar, simd))
            << "count=" << count << " offset=" << offset;
      }
    }
  }
}

TEST(SimdKernelTest, DiagKernelBitIdenticalAcrossTargetBitsAndTails) {
  if (simd_backend() == KernelBackend::kScalar) {
    GTEST_SKIP() << "no SIMD backend compiled in / supported by this CPU";
  }
  for (const Mat2& m : matrix_shapes()) {
    for (const std::uint64_t target_bit : {1u, 2u, 8u, 32u}) {
      // Includes counts that are not multiples of the factor group so the
      // trailing partial-group scalar path runs.
      for (const std::size_t count : {2u, 3u, 33u, 64u, 100u, 257u}) {
        for (const std::size_t offset : {0u, 1u}) {
          auto scalar = random_amps(count + offset, count * 31 + target_bit);
          auto simd = scalar;
          diag_kernel(scalar.data() + offset, count, m, target_bit, 0,
                      KernelBackend::kScalar);
          diag_kernel(simd.data() + offset, count, m, target_bit, 0,
                      simd_backend());
          EXPECT_TRUE(bytes_equal(scalar, simd))
              << "target_bit=" << target_bit << " count=" << count
              << " offset=" << offset;
        }
      }
    }
  }
}

TEST(SimdKernelTest, MixKernelBitIdenticalAcrossStrides) {
  if (simd_backend() == KernelBackend::kScalar) {
    GTEST_SKIP() << "no SIMD backend compiled in / supported by this CPU";
  }
  for (const Mat2& m : matrix_shapes()) {
    for (const std::uint64_t stride : {1u, 2u, 4u, 8u, 16u}) {
      for (const std::uint64_t groups : {1u, 2u, 3u, 5u}) {
        const std::size_t count = 2 * stride * groups;
        for (const std::size_t offset : {0u, 1u}) {
          auto scalar = random_amps(count + offset, stride * 77 + groups);
          auto simd = scalar;
          mix_kernel(scalar.data() + offset, count, m, stride, 0,
                     KernelBackend::kScalar);
          mix_kernel(simd.data() + offset, count, m, stride, 0,
                     simd_backend());
          EXPECT_TRUE(bytes_equal(scalar, simd))
              << "stride=" << stride << " count=" << count
              << " offset=" << offset;
        }
      }
    }
  }
}

TEST(SimdKernelTest, PairKernelBitIdenticalAcrossLengths) {
  if (simd_backend() == KernelBackend::kScalar) {
    GTEST_SKIP() << "no SIMD backend compiled in / supported by this CPU";
  }
  for (const Mat2& m : matrix_shapes()) {
    for (const std::size_t count : {2u, 3u, 7u, 64u, 129u}) {
      auto scalar_x = random_amps(count, count + 5);
      auto scalar_y = random_amps(count, count + 6);
      auto simd_x = scalar_x;
      auto simd_y = scalar_y;
      pair_kernel(scalar_x.data(), scalar_y.data(), count, m, 0,
                  KernelBackend::kScalar);
      pair_kernel(simd_x.data(), simd_y.data(), count, m, 0, simd_backend());
      EXPECT_TRUE(bytes_equal(scalar_x, simd_x)) << "count=" << count;
      EXPECT_TRUE(bytes_equal(scalar_y, simd_y)) << "count=" << count;
    }
  }
}

TEST(SimdKernelTest, ControlMasksDemoteToScalarExactly) {
  // Offset-segment control masks take the scalar path on every backend;
  // the result must equal a scalar-backend call outright.
  const Mat2 m = gate_matrix({GateKind::kH, 0});
  const std::uint64_t ctrl = 0b101;
  const std::size_t count = 64;
  auto scalar = random_amps(count, 99);
  auto simd = scalar;
  diag_kernel(scalar.data(), count, m, 2, ctrl, KernelBackend::kScalar);
  diag_kernel(simd.data(), count, m, 2, ctrl, simd_backend());
  EXPECT_TRUE(bytes_equal(scalar, simd));

  auto scalar2 = random_amps(count, 98);
  auto simd2 = scalar2;
  mix_kernel(scalar2.data(), count, m, 4, ctrl, KernelBackend::kScalar);
  mix_kernel(simd2.data(), count, m, 4, ctrl, simd_backend());
  EXPECT_TRUE(bytes_equal(scalar2, simd2));
}

TEST(SimdKernelTest, DetectRespectsDisableKnob) {
  EXPECT_EQ(detect_kernel_backend(false), KernelBackend::kScalar);
  EXPECT_STREQ(kernel_backend_name(KernelBackend::kScalar), "scalar");
  EXPECT_STREQ(kernel_backend_name(KernelBackend::kAvx2), "avx2");
  EXPECT_STREQ(kernel_backend_name(KernelBackend::kNeon), "neon");
}

// ---------------------------------------------------------------------------
// Golden-bitstream leg: SIMD (and CQS_NATIVE) builds must not move a single
// byte of the compression pipeline's output.
// ---------------------------------------------------------------------------

TEST(SimdKernelTest, GoldenCodecDigestsUnchangedInThisBuild) {
  // Same digests tests/golden_blob_test.cpp pins, re-asserted here so the
  // CQS_NATIVE CI job (which runs this target) catches -march=native or
  // contraction drift in the codecs even if it only runs the SIMD suite.
  for (const compression::GoldenBlob& blob : compression::kGoldenBlobs) {
    EXPECT_EQ(compression::golden_blob_hash(blob), blob.sha256)
        << blob.codec << "/" << blob.mode << "/" << blob.fixture
        << ": compressed bitstream drifted in this build configuration";
  }
}

class SimdCheckpointTest : public test::TempDirFixture {};

TEST_F(SimdCheckpointTest, CheckpointBytesIdenticalSimdOnVsOff) {
  // End-to-end bitstream pin: simulate, save, and compare the checkpoint
  // files byte-for-byte with SIMD kernels on vs off. Any kernel rounding
  // difference would change amplitudes, then compressed payloads, then the
  // file; identical files prove the whole chain is untouched.
  const auto circuit = circuits::qft_circuit({.num_qubits = 10});
  auto checkpoint_bytes = [&](bool simd) {
    core::SimConfig config;
    config.num_qubits = 10;
    config.num_ranks = 2;
    config.blocks_per_rank = 8;
    config.threads = 2;
    config.initial_level = 2;  // lossy codec arithmetic in the loop too
    config.enable_simd_kernels = simd;
    core::CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    const std::string file =
        path(simd ? "simd_on.bin" : "simd_off.bin");
    sim.save_checkpoint(file);
    std::ifstream in(file, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  };
  const auto off = checkpoint_bytes(false);
  const auto on = checkpoint_bytes(true);
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off.size(), on.size());
  EXPECT_TRUE(off == on)
      << "checkpoint bytes differ between SIMD on and off";
}

TEST(SimdKernelTest, SimulatorStatesBitIdenticalSimdOnVsOff) {
  // The in-memory equivalent, over the randomized fuzz circuits.
  for (std::uint64_t seed : {3u, 19u}) {
    const auto circuit = test::random_circuit(11, 80, seed);
    std::vector<double> reference;
    for (bool simd : {false, true}) {
      core::SimConfig config;
      config.num_qubits = 11;
      config.num_ranks = 2;
      config.blocks_per_rank = 8;
      config.threads = 2;
      config.initial_level = 2;
      config.codec_policy = "adaptive";
      config.enable_simd_kernels = simd;
      core::CompressedStateSimulator sim(config);
      sim.apply_circuit(circuit);
      const auto raw = sim.to_raw();
      if (reference.empty()) {
        reference = raw;
      } else {
        CQS_EXPECT_STATES_CLOSE(raw, reference, 0.0) << "seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace cqs::qsim
