// Unified fault-injection harness coverage:
//   - plan-grammar parsing (valid forms, malformed entries, unknown
//     actions, zero triggers),
//   - firing semantics: once-at-Nth, every-call-from-Nth (@N+), a window
//     of consecutive calls (@NxC), independent per-site counters,
//   - seeded triggers (@~W): resolved into [1, W] at arm time as a pure
//     function of (seed, site, entry index) — same seed, same fire site,
//   - the FaultInjectionConcurrencyTest suite is the TSan target: a
//     site's Nth call fires exactly once no matter which thread lands it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/fault_injection.hpp"

namespace cqs::runtime {
namespace {

TEST(FaultPlanTest, ParsesSingleEntryWithDefaults) {
  const auto plan = FaultPlan::parse("spill.write@3");
  ASSERT_EQ(plan.specs.size(), 1u);
  EXPECT_EQ(plan.specs[0].site, "spill.write");
  EXPECT_EQ(plan.specs[0].nth, 3u);
  EXPECT_EQ(plan.specs[0].count, 1u);
  EXPECT_EQ(plan.specs[0].action, "fail");
  EXPECT_EQ(plan.seed, 0u);
}

TEST(FaultPlanTest, ParsesSeedActionsAuxAndMultipleEntries) {
  const auto plan = FaultPlan::parse(
      "seed=7; spill.write@~6:enospc, transport.send@2+:stall=250;"
      "checkpoint.rename@1x3");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].site, "spill.write");
  EXPECT_EQ(plan.specs[0].nth, 0u);  // seeded: resolved at arm()
  EXPECT_EQ(plan.specs[0].window, 6u);
  EXPECT_EQ(plan.specs[0].action, "enospc");
  EXPECT_EQ(plan.specs[1].site, "transport.send");
  EXPECT_EQ(plan.specs[1].nth, 2u);
  EXPECT_EQ(plan.specs[1].count, 0u);  // every call from the 2nd
  EXPECT_EQ(plan.specs[1].action, "stall");
  EXPECT_EQ(plan.specs[1].aux, 250u);
  EXPECT_EQ(plan.specs[2].nth, 1u);
  EXPECT_EQ(plan.specs[2].count, 3u);
}

TEST(FaultPlanTest, RejectsMalformedEntries) {
  EXPECT_THROW(FaultPlan::parse(""), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("spill.write"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("spill.write@"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("spill.write@0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("spill.write@x"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("spill.write@2x0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("spill.write@~0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("spill.write@2:frobnicate"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("seed=banana;spill.write@1"),
               std::invalid_argument);
}

TEST(FaultInjectorTest, FiresOnceOnNthCall) {
  ScopedFaultPlan plan("spill.write@3:enospc");
  auto& inj = FaultInjector::instance();
  EXPECT_FALSE(inj.on_call("spill.write"));
  EXPECT_FALSE(inj.on_call("spill.write"));
  const auto hit = inj.on_call("spill.write");
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->call, 3u);
  EXPECT_EQ(hit->action, "enospc");
  EXPECT_FALSE(inj.on_call("spill.write"));
  EXPECT_EQ(inj.calls("spill.write"), 4u);
  ASSERT_EQ(inj.fired().size(), 1u);
  EXPECT_EQ(inj.fired()[0].call, 3u);
}

TEST(FaultInjectorTest, FromNthOnFiresEveryLaterCall) {
  ScopedFaultPlan plan("transport.send@2+:die");
  auto& inj = FaultInjector::instance();
  EXPECT_FALSE(inj.on_call("transport.send"));
  for (int i = 0; i < 5; ++i) {
    const auto hit = inj.on_call("transport.send");
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->action, "die");
  }
  EXPECT_EQ(inj.fired().size(), 5u);
}

TEST(FaultInjectorTest, WindowFiresExactlyCConsecutiveCalls) {
  ScopedFaultPlan plan("spill.write@2x3");
  auto& inj = FaultInjector::instance();
  int fired = 0;
  for (int i = 1; i <= 8; ++i) {
    if (inj.on_call("spill.write")) ++fired;
  }
  EXPECT_EQ(fired, 3);
  const auto ledger = FaultInjector::instance().fired();
  ASSERT_EQ(ledger.size(), 3u);
  EXPECT_EQ(ledger[0].call, 2u);
  EXPECT_EQ(ledger[2].call, 4u);
}

TEST(FaultInjectorTest, SitesCountIndependently) {
  ScopedFaultPlan plan("spill.write@2;transport.send@2");
  auto& inj = FaultInjector::instance();
  EXPECT_FALSE(inj.on_call("spill.write"));
  EXPECT_FALSE(inj.on_call("transport.send"));
  EXPECT_TRUE(inj.on_call("spill.write"));
  EXPECT_TRUE(inj.on_call("transport.send"));
  EXPECT_EQ(inj.calls("spill.write"), 2u);
  EXPECT_EQ(inj.calls("transport.send"), 2u);
  EXPECT_EQ(inj.calls("checkpoint.rename"), 0u);
}

TEST(FaultInjectorTest, DisarmedIsFreeAndCountsNothing) {
  {
    ScopedFaultPlan plan("spill.write@1");
  }  // disarmed on scope exit
  auto& inj = FaultInjector::instance();
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.on_call("spill.write"));
  EXPECT_EQ(inj.calls("spill.write"), 0u);
}

TEST(FaultInjectorTest, SeededTriggerResolvesDeterministically) {
  std::uint64_t first = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    ScopedFaultPlan plan("seed=42;spill.write@~10:enospc");
    const auto specs = FaultInjector::instance().resolved_specs();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_GE(specs[0].nth, 1u);
    EXPECT_LE(specs[0].nth, 10u);
    if (attempt == 0) {
      first = specs[0].nth;
    } else {
      EXPECT_EQ(specs[0].nth, first);  // same seed => same resolved call
    }
  }
  // A different seed is allowed to (and here does not have to) move the
  // trigger, but it must still land inside the window.
  ScopedFaultPlan plan("seed=43;spill.write@~10:enospc");
  const auto specs = FaultInjector::instance().resolved_specs();
  EXPECT_GE(specs[0].nth, 1u);
  EXPECT_LE(specs[0].nth, 10u);
}

// TSan target: the Nth-call contract holds under contention — exactly one
// thread observes the hit, and the ledger records call N.
TEST(FaultInjectionConcurrencyTest, NthCallFiresExactlyOnceAcrossThreads) {
  ScopedFaultPlan plan("spill.write@64:enospc");
  std::atomic<int> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 16; ++i) {
        if (FaultInjector::instance().on_call("spill.write")) {
          hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hits.load(), 1);
  EXPECT_EQ(FaultInjector::instance().calls("spill.write"), 128u);
  const auto ledger = FaultInjector::instance().fired();
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger[0].call, 64u);
}

}  // namespace
}  // namespace cqs::runtime
