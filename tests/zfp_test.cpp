// Unit tests specific to the ZFP-like transform codec.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "compression/verify.hpp"
#include "zfp/zfp.hpp"

namespace cqs::zfp {
namespace {

using compression::ErrorBound;
using compression::measure_error;

TEST(ZfpTest, AbsoluteBoundRespectedOnSmoothData) {
  std::vector<double> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(0.02 * static_cast<double>(i));
  }
  ZfpCodec codec;
  for (double bound : {1e-2, 1e-4, 1e-8}) {
    const auto compressed = codec.compress(data, ErrorBound::absolute(bound));
    std::vector<double> out(data.size());
    codec.decompress(compressed, out);
    EXPECT_LE(measure_error(data, out).max_absolute, bound)
        << "bound " << bound;
  }
}

TEST(ZfpTest, AbsoluteBoundRespectedOnRandomData) {
  Rng rng(19);
  std::vector<double> data(4096);
  for (auto& d : data) d = rng.next_normal();
  ZfpCodec codec;
  for (double bound : {1e-3, 1e-6}) {
    const auto compressed = codec.compress(data, ErrorBound::absolute(bound));
    std::vector<double> out(data.size());
    codec.decompress(compressed, out);
    EXPECT_LE(measure_error(data, out).max_absolute, bound);
  }
}

TEST(ZfpTest, AllZeroBlocksAreOneBit) {
  std::vector<double> data(4096, 0.0);
  ZfpCodec codec;
  const auto compressed = codec.compress(data, ErrorBound::absolute(1e-6));
  // 1024 blocks x 1 bit + header: far below one byte per block.
  EXPECT_LT(compressed.size(), 200u);
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  for (double v : out) EXPECT_EQ(v, 0.0);
}

TEST(ZfpTest, SmoothBeatsSpikyInRatio) {
  std::vector<double> smooth(16384);
  for (std::size_t i = 0; i < smooth.size(); ++i) {
    smooth[i] = std::sin(0.01 * static_cast<double>(i));
  }
  Rng rng(5);
  std::vector<double> spiky(16384);
  for (auto& d : spiky) {
    d = (rng.next_bool() ? 1.0 : -1.0) * std::exp2(-25.0 * rng.next_double());
  }
  ZfpCodec codec;
  const auto bound = ErrorBound::relative(1e-3);
  const auto cs = codec.compress(smooth, bound);
  const auto cp = codec.compress(spiky, bound);
  // The domain-transform model relies on smoothness (Section 4.1's
  // explanation of why ZFP struggles on quantum state data).
  EXPECT_LT(cs.size(), cp.size());
}

TEST(ZfpTest, FixedPrecisionModeBoundsBitsPerBlock) {
  Rng rng(29);
  std::vector<double> data(4096);
  for (auto& d : data) d = rng.next_normal();
  ZfpCodec low_precision(8);
  ZfpCodec high_precision(40);
  const auto bound = ErrorBound::absolute(1e-12);  // ignored in fixed mode
  const auto lo = low_precision.compress(data, bound);
  const auto hi = high_precision.compress(data, bound);
  EXPECT_LT(lo.size(), hi.size());
  // 8 planes of 4 coefficients + headers: < 8 bytes per 4-value block.
  EXPECT_LT(lo.size(), data.size() * 2);
}

TEST(ZfpTest, PartialTailBlockRoundTrips) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 6u, 7u}) {
    std::vector<double> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = 0.1 * static_cast<double>(i + 1);
    }
    ZfpCodec codec;
    const auto compressed = codec.compress(data, ErrorBound::absolute(1e-9));
    std::vector<double> out(n);
    codec.decompress(compressed, out);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(out[i], data[i], 1e-9);
    }
  }
}

TEST(ZfpTest, NonfiniteRejected) {
  std::vector<double> data = {1.0, std::nan(""), 2.0, 3.0};
  ZfpCodec codec;
  EXPECT_THROW(codec.compress(data, ErrorBound::absolute(1e-3)),
               std::invalid_argument);
}

TEST(ZfpTest, WideDynamicRangePerBlockExponent) {
  // Each block has its own exponent; tiny and huge blocks coexist.
  std::vector<double> data;
  for (int i = 0; i < 4; ++i) data.push_back(1e-20 * (i + 1));
  for (int i = 0; i < 4; ++i) data.push_back(1e+20 * (i + 1));
  ZfpCodec codec;
  const auto compressed = codec.compress(data, ErrorBound::relative(1e-6));
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(out[i], data[i], std::abs(data[i]) * 1e-6);
  }
}

}  // namespace
}  // namespace cqs::zfp
