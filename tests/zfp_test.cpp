// Unit tests specific to the ZFP-like transform codec.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "compression/rans.hpp"
#include "compression/verify.hpp"
#include "zfp/zfp.hpp"
#include "zfp/zfp_rans.hpp"

namespace cqs::zfp {
namespace {

using compression::ErrorBound;
using compression::measure_error;

TEST(ZfpTest, AbsoluteBoundRespectedOnSmoothData) {
  std::vector<double> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(0.02 * static_cast<double>(i));
  }
  ZfpCodec codec;
  for (double bound : {1e-2, 1e-4, 1e-8}) {
    const auto compressed = codec.compress(data, ErrorBound::absolute(bound));
    std::vector<double> out(data.size());
    codec.decompress(compressed, out);
    EXPECT_LE(measure_error(data, out).max_absolute, bound)
        << "bound " << bound;
  }
}

TEST(ZfpTest, AbsoluteBoundRespectedOnRandomData) {
  Rng rng(19);
  std::vector<double> data(4096);
  for (auto& d : data) d = rng.next_normal();
  ZfpCodec codec;
  for (double bound : {1e-3, 1e-6}) {
    const auto compressed = codec.compress(data, ErrorBound::absolute(bound));
    std::vector<double> out(data.size());
    codec.decompress(compressed, out);
    EXPECT_LE(measure_error(data, out).max_absolute, bound);
  }
}

TEST(ZfpTest, AllZeroBlocksAreOneBit) {
  std::vector<double> data(4096, 0.0);
  ZfpCodec codec;
  const auto compressed = codec.compress(data, ErrorBound::absolute(1e-6));
  // 1024 blocks x 1 bit + header: far below one byte per block.
  EXPECT_LT(compressed.size(), 200u);
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  for (double v : out) EXPECT_EQ(v, 0.0);
}

TEST(ZfpTest, SmoothBeatsSpikyInRatio) {
  std::vector<double> smooth(16384);
  for (std::size_t i = 0; i < smooth.size(); ++i) {
    smooth[i] = std::sin(0.01 * static_cast<double>(i));
  }
  Rng rng(5);
  std::vector<double> spiky(16384);
  for (auto& d : spiky) {
    d = (rng.next_bool() ? 1.0 : -1.0) * std::exp2(-25.0 * rng.next_double());
  }
  ZfpCodec codec;
  const auto bound = ErrorBound::relative(1e-3);
  const auto cs = codec.compress(smooth, bound);
  const auto cp = codec.compress(spiky, bound);
  // The domain-transform model relies on smoothness (Section 4.1's
  // explanation of why ZFP struggles on quantum state data).
  EXPECT_LT(cs.size(), cp.size());
}

TEST(ZfpTest, FixedPrecisionModeBoundsBitsPerBlock) {
  Rng rng(29);
  std::vector<double> data(4096);
  for (auto& d : data) d = rng.next_normal();
  ZfpCodec low_precision(8);
  ZfpCodec high_precision(40);
  const auto bound = ErrorBound::absolute(1e-12);  // ignored in fixed mode
  const auto lo = low_precision.compress(data, bound);
  const auto hi = high_precision.compress(data, bound);
  EXPECT_LT(lo.size(), hi.size());
  // 8 planes of 4 coefficients + headers: < 8 bytes per 4-value block.
  EXPECT_LT(lo.size(), data.size() * 2);
}

TEST(ZfpTest, PartialTailBlockRoundTrips) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 6u, 7u}) {
    std::vector<double> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = 0.1 * static_cast<double>(i + 1);
    }
    ZfpCodec codec;
    const auto compressed = codec.compress(data, ErrorBound::absolute(1e-9));
    std::vector<double> out(n);
    codec.decompress(compressed, out);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(out[i], data[i], 1e-9);
    }
  }
}

TEST(ZfpTest, NonfiniteRejected) {
  std::vector<double> data = {1.0, std::nan(""), 2.0, 3.0};
  ZfpCodec codec;
  EXPECT_THROW(codec.compress(data, ErrorBound::absolute(1e-3)),
               std::invalid_argument);
}

TEST(ZfpTest, FixedPrecisionValidatedAtConstruction) {
  EXPECT_THROW(ZfpCodec(-1), std::invalid_argument);
  EXPECT_THROW(ZfpCodec(kTotalPlanes + 1), std::invalid_argument);
  EXPECT_THROW(ZfpRansCodec(-1), std::invalid_argument);
  EXPECT_THROW(ZfpRansCodec(kTotalPlanes + 1), std::invalid_argument);
  EXPECT_NO_THROW(ZfpCodec(0));
  EXPECT_NO_THROW(ZfpCodec(kTotalPlanes));
}

TEST(ZfpTest, PlanesForToleranceEdgeCases) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  // Non-positive or NaN tolerance: keep everything (exact).
  EXPECT_EQ(planes_for_tolerance(0.0, 0), kTotalPlanes);
  EXPECT_EQ(planes_for_tolerance(-1.0, 0), kTotalPlanes);
  EXPECT_EQ(planes_for_tolerance(std::nan(""), 0), kTotalPlanes);
  // Infinite tolerance: keep nothing.
  EXPECT_EQ(planes_for_tolerance(inf, 0), 0);
  EXPECT_EQ(planes_for_tolerance(inf, -1074), 0);
  // Tolerance below one ulp of the block scale: keep everything.
  EXPECT_EQ(planes_for_tolerance(5e-324, 100), kTotalPlanes);
  // Tolerance at/above the block max: keep (almost) nothing.
  EXPECT_EQ(planes_for_tolerance(1e300, -1000), 0);
  // Extreme exponents must clamp, not misbehave: an emax far beyond the
  // double range drives ulp to inf (sub-ulp tolerance -> keep all) or to
  // zero (tolerance dwarfs the block -> keep none).
  EXPECT_EQ(planes_for_tolerance(1e-6, 5000), kTotalPlanes);
  EXPECT_EQ(planes_for_tolerance(1e-6, -5000), 0);
}

TEST(ZfpTest, PlanesForTolerancePropertyOverRandomPairs) {
  Rng rng(4242);
  for (int trial = 0; trial < 20000; ++trial) {
    // Tolerances across the full double range plus edge values; emax well
    // beyond the ilogb range in both directions.
    const double mag = std::ldexp(1.0, static_cast<int>(
        std::floor(rng.next_double() * 4200.0) - 2100.0));
    const double tolerance = rng.next_bool() ? mag : -mag;
    const int emax = static_cast<int>(
        std::floor(rng.next_double() * 6000.0) - 3000.0);
    const int kept = planes_for_tolerance(tolerance, emax);
    ASSERT_GE(kept, 0) << "tolerance " << tolerance << " emax " << emax;
    ASSERT_LE(kept, kTotalPlanes)
        << "tolerance " << tolerance << " emax " << emax;
    if (tolerance > 0.0 && std::isfinite(tolerance)) {
      // Looser tolerance can never keep more planes at the same exponent.
      const int kept_looser = planes_for_tolerance(tolerance * 16.0, emax);
      ASSERT_LE(kept_looser, kept)
          << "tolerance " << tolerance << " emax " << emax;
    }
  }
}

TEST(ZfpTest, DispatchedTransformMatchesScalarReference) {
  // The codec feeds the transform values up to ~2^59 (kFixedExp + Haar
  // growth); the pin sweeps that domain plus structured corners.
  Rng rng(777);
  const auto backend = detail::transform_backend();
  for (int trial = 0; trial < 50000; ++trial) {
    std::array<std::int64_t, 4> v{};
    for (auto& x : v) {
      const double u = rng.next_double() * 2.0 - 1.0;
      x = static_cast<std::int64_t>(u * std::ldexp(1.0, 59));
      if (rng.next_bool()) x >>= (trial % 57);  // mixed magnitudes
    }
    auto scalar_fwd = v;
    detail::forward_transform_scalar(scalar_fwd);
    auto simd_fwd = v;
    detail::forward_transform(simd_fwd);
    ASSERT_EQ(scalar_fwd, simd_fwd) << "forward mismatch on " << backend;

    auto scalar_inv = scalar_fwd;
    detail::inverse_transform_scalar(scalar_inv);
    auto simd_inv = scalar_fwd;
    detail::inverse_transform(simd_inv);
    ASSERT_EQ(scalar_inv, simd_inv) << "inverse mismatch on " << backend;
    ASSERT_EQ(scalar_inv, v) << "lifting must be exactly invertible";
  }
}

TEST(ZfpRansTest, EntropyStageNeverLosesMoreThanHeader) {
  Rng rng(91);
  std::vector<double> data(4096);
  for (auto& d : data) d = rng.next_normal();
  ZfpCodec plain;
  ZfpRansCodec staged;
  for (double bound : {1e-2, 1e-4, 1e-8}) {
    const auto p = plain.compress(data, ErrorBound::absolute(bound));
    const auto s = staged.compress(data, ErrorBound::absolute(bound));
    // Worst case is the raw-fallback flag path: zfp container + the
    // 'Z','R',flags header and element-count varint.
    EXPECT_LE(s.size(), p.size() + 3 + 3);
    std::vector<double> out(data.size());
    staged.decompress(s, out);
    EXPECT_LE(measure_error(data, out).max_absolute, bound);
  }
}

TEST(ZfpRansTest, EmptyBlockRunsCompressBelowRawZfp) {
  // Near-empty states (long runs of the 1-bit empty-block flag) are where
  // the entropy stage pays: the plane stream is mostly identical bytes.
  // The fixture must be large enough that the 256-entry frequency table
  // (~260 bytes) amortizes; tiny payloads take the raw-fallback path.
  std::vector<double> data(262144, 0.0);
  data[0] = 1.0;
  data[100000] = -0.5;
  ZfpCodec plain;
  ZfpRansCodec staged;
  const auto p = plain.compress(data, ErrorBound::absolute(1e-9));
  const auto s = staged.compress(data, ErrorBound::absolute(1e-9));
  EXPECT_LT(s.size(), p.size());
  std::vector<double> out(data.size());
  staged.decompress(s, out);
  EXPECT_NEAR(out[0], 1.0, 1e-9);
  EXPECT_NEAR(out[100000], -0.5, 1e-9);
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (i == 100000) continue;
    ASSERT_EQ(out[i], 0.0);
  }
}

TEST(ZfpRansTest, CorruptStreamsRejected) {
  Rng rng(17);
  std::vector<double> data(512);
  for (auto& d : data) d = rng.next_normal();
  ZfpRansCodec codec;
  auto compressed = codec.compress(data, ErrorBound::absolute(1e-6));
  std::vector<double> out(data.size());
  // Truncation anywhere in the rANS stream must throw, never misdecode
  // silently (the final-state check backstops mid-stream damage).
  Bytes truncated(compressed.begin(),
                  compressed.end() - static_cast<std::ptrdiff_t>(5));
  EXPECT_THROW(codec.decompress(truncated, out), std::exception);
  Bytes flipped = compressed;
  flipped[flipped.size() / 2] ^= std::byte{0x40};
  try {
    codec.decompress(flipped, out);
    // A flip that survives decode must still reproduce the recorded count
    // contract; reaching here without a throw is acceptable only because
    // the flipped byte may sit in the raw zfp payload of a fallback
    // container — re-verify the container is not the entropy path.
    ASSERT_NE((static_cast<std::uint8_t>(compressed[2]) & 1), 0u);
  } catch (const std::exception&) {
    // expected on the entropy path
  }
}

TEST(ZfpRansTest, RansRoundTripsArbitraryByteStreams) {
  Rng rng(23);
  compression::rans::RansScratch scratch;
  for (std::size_t len : {0u, 1u, 2u, 17u, 256u, 5000u}) {
    Bytes in(len);
    // Skewed alphabet to exercise normalization; includes the
    // single-symbol degenerate table.
    for (auto& b : in) {
      b = static_cast<std::byte>(len <= 2 ? 7 : (rng.next_u64() & 0x0F));
    }
    Bytes encoded;
    compression::rans::encode(in, scratch, encoded);
    Bytes decoded;
    std::size_t offset = 0;
    compression::rans::decode(encoded, offset, scratch, decoded);
    ASSERT_EQ(offset, encoded.size());
    ASSERT_EQ(decoded, in);
  }
}

TEST(ZfpTest, WideDynamicRangePerBlockExponent) {
  // Each block has its own exponent; tiny and huge blocks coexist.
  std::vector<double> data;
  for (int i = 0; i < 4; ++i) data.push_back(1e-20 * (i + 1));
  for (int i = 0; i < 4; ++i) data.push_back(1e+20 * (i + 1));
  ZfpCodec codec;
  const auto compressed = codec.compress(data, ErrorBound::relative(1e-6));
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(out[i], data[i], std::abs(data[i]) * 1e-6);
  }
}

}  // namespace
}  // namespace cqs::zfp
