// Shared test harness for the cqs suite:
//   - tolerance-aware state-vector comparison helpers,
//   - a temp-dir fixture so checkpoint/file tests are safe under `ctest -j`,
//   - seeded data generators for three dataset regimes (spiky QAOA-like,
//     dense supremacy-like, sparse early-simulation) so property tests are
//     deterministic.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "common/rng.hpp"
#include "qsim/circuit.hpp"

namespace cqs::test {

/// Randomized circuit over all three partition segments: single-qubit
/// gates (including parameterized rotations), controlled pairs, SWAPs,
/// and Toffolis on uniformly drawn qubits. Deterministic in `seed`.
/// Shared by the concurrency and pipeline differential/fuzz suites.
inline qsim::Circuit random_circuit(int qubits, std::size_t gates,
                                    std::uint64_t seed) {
  Rng rng(seed);
  qsim::Circuit c(qubits);
  auto qubit = [&] { return static_cast<int>(rng.next_below(qubits)); };
  auto distinct_from = [&](int a) {
    int q = qubit();
    while (q == a) q = qubit();
    return q;
  };
  for (std::size_t i = 0; i < gates; ++i) {
    const int target = qubit();
    switch (rng.next_below(10)) {
      case 0: c.h(target); break;
      case 1: c.x(target); break;
      case 2: c.t(target); break;
      case 3: c.rz(target, rng.next_double() * 3.0); break;
      case 4: c.ry(target, rng.next_double() * 3.0); break;
      case 5: c.cx(distinct_from(target), target); break;
      case 6: c.cz(distinct_from(target), target); break;
      case 7: c.cphase(distinct_from(target), target,
                       rng.next_double() * 3.0); break;
      case 8: c.swap(distinct_from(target), target); break;
      default: {
        const int c0 = distinct_from(target);
        int c1 = qubit();
        while (c1 == target || c1 == c0) c1 = qubit();
        c.ccx(c0, c1, target);
        break;
      }
    }
  }
  return c;
}

// The seeded generators moved to common/fixtures.hpp so the benches and
// golden-blob tests share exactly these inputs; the test-local names stay.
using fixtures::dense_supremacy_like;
using fixtures::sparse_like;
using fixtures::spiky_qaoa_like;

/// Tolerance-aware comparison of two raw states. Use tol = 0 for
/// bit-identical (lossless / determinism tests).
inline ::testing::AssertionResult states_close(std::span<const double> a,
                                               std::span<const double> b,
                                               double tol) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = std::abs(a[i] - b[i]);
    if (!(diff <= tol)) {
      return ::testing::AssertionFailure()
             << "index " << i << ": " << a[i] << " vs " << b[i]
             << " (|diff| = " << diff << " > " << tol << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

#define CQS_EXPECT_STATES_CLOSE(a, b, tol) \
  EXPECT_TRUE(::cqs::test::states_close((a), (b), (tol)))

/// Creates a unique directory under the system temp dir for the lifetime of
/// each test, so file-writing tests (checkpoints) never collide when the
/// suite runs with `ctest -j`.
class TempDirFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string leaf = std::string("cqs_") + info->test_suite_name() + "_" +
                       info->name();
    for (auto& ch : leaf) {
      if (ch == '/' || ch == '\\') ch = '_';
    }
    dir_ = std::filesystem::temp_directory_path() / leaf;
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;  // best-effort cleanup; never fail the test
    std::filesystem::remove_all(dir_, ec);
  }

  /// Absolute path for a file inside the per-test directory.
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

}  // namespace cqs::test
