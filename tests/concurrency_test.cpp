// Concurrency properties: shared structures survive parallel hammering,
// and — critically for reproducible science — simulation results are
// bit-identical regardless of worker-thread count, because every block's
// compression is deterministic and blocks are independent.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "circuits/qaoa.hpp"
#include "circuits/qft.hpp"
#include "circuits/supremacy.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/simulator.hpp"
#include "qsim/circuit.hpp"
#include "runtime/block_cache.hpp"
#include "runtime/block_store.hpp"
#include "test_util.hpp"

namespace cqs {
namespace {

TEST(ConcurrencyTest, BlockCacheParallelMixedOps) {
  // Key space == cache lines, so once a key is inserted it is never
  // evicted: hits are guaranteed under every interleaving, which keeps the
  // assertions deterministic while still hammering lookup/insert races.
  runtime::BlockCache cache(64);
  ThreadPool pool(8);
  std::atomic<std::uint64_t> found{0};
  pool.parallel_for(10000, [&](std::size_t i, std::size_t) {
    const std::uint64_t key = i % 64;
    Bytes out1;
    Bytes out2;
    if (cache.lookup(key, out1, out2)) {
      // Entries must round-trip intact under contention.
      ASSERT_EQ(out1.size(), 1 + key % 7);
      ++found;
    } else {
      cache.insert(key, Bytes(1 + key % 7, std::byte{1}), {});
    }
  });
  EXPECT_GT(found.load(), 0u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 10000u);
  EXPECT_FALSE(stats.disabled);
}

TEST(ConcurrencyTest, BlockCacheParallelThrashDisablesButKeepsCounting) {
  // Twice as many keys as lines is a worst-case LRU thrash: the cache may
  // legitimately self-disable (paper: "disable the compressed block cache
  // if the cache hit rate is always zero"), but the stats invariant —
  // every lookup counts exactly one hit or miss — must hold regardless of
  // interleaving or disable timing.
  runtime::BlockCache cache(64, /*disable_after_misses=*/4096);
  ThreadPool pool(8);
  pool.parallel_for(10000, [&](std::size_t i, std::size_t) {
    const std::uint64_t key = i % 128;
    Bytes out1;
    Bytes out2;
    if (!cache.lookup(key, out1, out2)) {
      cache.insert(key, Bytes(1 + key % 7, std::byte{1}), {});
    }
  });
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 10000u);
}

TEST(ConcurrencyTest, BlockStoreTotalBytesConsistent) {
  runtime::BlockStore store(256);
  ThreadPool pool(8);
  // Many rounds of concurrent updates to distinct blocks.
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(256, [&](std::size_t i, std::size_t) {
      store.set_block(static_cast<int>(i),
                      Bytes((i % 31) + round, std::byte{0}), {0});
    });
  }
  std::size_t expected = 0;
  for (int b = 0; b < 256; ++b) expected += (b % 31) + 9;
  EXPECT_EQ(store.total_bytes(), expected);
}

TEST(ConcurrencyTest, ResultsIdenticalAcrossThreadCounts) {
  const auto circuit =
      circuits::qaoa_maxcut_circuit({.num_qubits = 12});
  std::vector<double> reference;
  for (int threads : {1, 2, 8}) {
    core::SimConfig config;
    config.num_qubits = 12;
    config.num_ranks = 4;
    config.blocks_per_rank = 8;
    config.threads = threads;
    config.initial_level = 3;  // lossy: determinism must still hold
    core::CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    const auto raw = sim.to_raw();
    if (reference.empty()) {
      reference = raw;
    } else {
      // tol = 0: results must be bit-identical across thread counts.
      CQS_EXPECT_STATES_CLOSE(raw, reference, 0.0);
    }
  }
}

using test::random_circuit;  // shared with the pipeline suite (test_util)

/// The deterministic subset of a report: everything except wall-clock
/// times and cache-interleaving artifacts (hit/miss split, compress-call
/// counts) must be identical across worker counts.
struct DeterministicReport {
  std::uint64_t gates, batched_runs, batched_gates, lossy_passes;
  double fidelity_bound;
  int final_ladder_level;
  std::uint64_t final_lossless_blocks, final_lossy_blocks;
  std::size_t final_lossless_bytes, final_lossy_bytes;
  bool operator==(const DeterministicReport&) const = default;
};

DeterministicReport deterministic_fields(const core::SimulationReport& r) {
  return {r.gates,
          r.batched_runs,
          r.batched_gates,
          r.lossy_passes,
          r.fidelity_bound,
          r.final_ladder_level,
          r.final_lossless_blocks,
          r.final_lossy_blocks,
          r.final_lossless_bytes,
          r.final_lossy_bytes};
}

TEST(ConcurrencyTest, RandomizedCircuitsBitIdenticalAcrossThreadCounts) {
  // Randomized circuits x {fixed, adaptive} x {1, 2, hw} worker threads:
  // states must be bit-identical and the deterministic report fields must
  // agree — per-block compression is deterministic, blocks are
  // independent, and (for adaptive) the arbiter's hysteresis follows the
  // stored codec even across cache hit/miss interleavings.
  const int hw = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
  for (const std::string policy : {"fixed", "adaptive"}) {
    for (std::uint64_t seed : {11u, 42u}) {
      const auto circuit = random_circuit(11, 90, seed);
      std::vector<double> reference;
      DeterministicReport reference_report{};
      for (int threads : {1, 2, hw}) {
        core::SimConfig config;
        config.num_qubits = 11;
        config.num_ranks = 2;
        config.blocks_per_rank = 8;
        config.threads = threads;
        config.initial_level = 2;  // lossy: determinism must still hold
        config.codec_policy = policy;
        core::CompressedStateSimulator sim(config);
        sim.apply_circuit(circuit);
        const auto report = deterministic_fields(sim.report());
        const auto raw = sim.to_raw();
        if (reference.empty()) {
          reference = raw;
          reference_report = report;
        } else {
          // tol = 0: bit-identical states regardless of worker count.
          CQS_EXPECT_STATES_CLOSE(raw, reference, 0.0);
          EXPECT_EQ(report, reference_report)
              << "policy " << policy << " seed " << seed << " threads "
              << threads;
        }
      }
    }
  }
}

TEST(ConcurrencyTest, BudgetEscalationIdenticalAcrossThreadCounts) {
  // The ladder escalates mid-run under a tight budget; the escalation
  // point and the resulting state must not depend on the worker count.
  const auto circuit = random_circuit(10, 60, 7);
  std::vector<double> reference;
  DeterministicReport reference_report{};
  for (int threads : {1, 4}) {
    core::SimConfig config;
    config.num_qubits = 10;
    config.num_ranks = 2;
    config.blocks_per_rank = 4;
    config.threads = threads;
    config.codec_policy = "adaptive";
    config.memory_budget_bytes = 6 * 1024;
    core::CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    const auto report = deterministic_fields(sim.report());
    const auto raw = sim.to_raw();
    if (reference.empty()) {
      reference = raw;
      reference_report = report;
    } else {
      CQS_EXPECT_STATES_CLOSE(raw, reference, 0.0);
      EXPECT_EQ(report, reference_report);
    }
  }
}

TEST(ConcurrencyTest, FidelityBoundIdenticalAcrossThreadCounts) {
  const auto circuit =
      circuits::supremacy_circuit({.rows = 3, .cols = 4, .depth = 6});
  double reference_bound = -1.0;
  for (int threads : {1, 8}) {
    core::SimConfig config;
    config.num_qubits = 12;
    config.num_ranks = 2;
    config.blocks_per_rank = 8;
    config.threads = threads;
    config.initial_level = 2;
    core::CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    if (reference_bound < 0.0) {
      reference_bound = sim.fidelity_bound();
    } else {
      EXPECT_DOUBLE_EQ(sim.fidelity_bound(), reference_bound);
    }
  }
}

TEST(ConcurrencyTest, PerCodecInvocationCountsDeterministicAcrossThreads) {
  // The report's per-codec-class attribution: with the block cache off
  // (cache hits skip codec calls and hit/miss splits depend on
  // interleaving), the invocation counts are a pure function of the
  // workload — identical for 1, 2, and hw worker threads — and they
  // partition the total codec invocations. The seconds are wall-clock and
  // only sanity-checked (finite, nonnegative, nonzero where called).
  const int hw = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
  const auto circuit = random_circuit(11, 80, 3);
  std::uint64_t ref_counts[4] = {0, 0, 0, 0};
  bool have_reference = false;
  for (int threads : {1, 2, hw}) {
    core::SimConfig config;
    config.num_qubits = 11;
    config.num_ranks = 2;
    config.blocks_per_rank = 8;
    config.threads = threads;
    config.initial_level = 1;
    config.codec_policy = "adaptive";
    config.enable_cache = false;
    core::CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    const auto report = sim.report();
    const std::uint64_t counts[4] = {report.lossless_compress_invocations,
                                     report.lossy_compress_invocations,
                                     report.lossless_decompress_invocations,
                                     report.lossy_decompress_invocations};
    EXPECT_EQ(counts[0] + counts[1], report.compress_invocations);
    EXPECT_EQ(counts[2] + counts[3], report.decompress_invocations);
    for (double seconds :
         {report.lossless_compress_seconds, report.lossy_compress_seconds,
          report.lossless_decompress_seconds,
          report.lossy_decompress_seconds}) {
      EXPECT_GE(seconds, 0.0);
      EXPECT_TRUE(std::isfinite(seconds));
    }
    // The adaptive run writes both codec classes; time attribution must
    // follow wherever invocations happened.
    EXPECT_GT(counts[0] + counts[1], 0u);
    if (counts[0] > 0) EXPECT_GT(report.lossless_compress_seconds, 0.0);
    if (counts[1] > 0) EXPECT_GT(report.lossy_compress_seconds, 0.0);
    if (!have_reference) {
      for (int i = 0; i < 4; ++i) ref_counts[i] = counts[i];
      have_reference = true;
    } else {
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(counts[i], ref_counts[i]) << "threads " << threads
                                            << " field " << i;
      }
    }
  }
}

TEST(ConcurrencyTest, RemappedRunsBitIdenticalAcrossThreadCounts) {
  // The qubit-remap pre-pass plans single-threaded and the remap sweep
  // touches disjoint block pairs, so remap-on runs — including relabeled
  // swaps, remap exchanges, and the remapped comm/stat counters — must be
  // bit-identical across worker counts on every circuit family, and the
  // remapped layout itself must not depend on the thread count.
  const int hw = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
  const auto circuits_under_test = {
      circuits::qft_circuit({.num_qubits = 11}),
      random_circuit(11, 90, 23),  // SWAP-heavy randomized mix
  };
  for (const auto& circuit : circuits_under_test) {
    std::vector<double> reference;
    DeterministicReport reference_report{};
    std::uint64_t reference_comm_bytes = 0;
    std::uint64_t reference_remaps[4] = {0, 0, 0, 0};
    std::vector<int> reference_map;
    for (int threads : {1, 2, hw}) {
      core::SimConfig config;
      config.num_qubits = 11;
      config.num_ranks = 4;
      config.blocks_per_rank = 4;
      config.threads = threads;
      config.enable_qubit_remap = true;
      core::CompressedStateSimulator sim(config);
      sim.apply_circuit(circuit);
      const auto report = sim.report();
      const auto fields = deterministic_fields(report);
      const std::uint64_t remaps[4] = {report.remap_sweeps,
                                       report.swaps_relabeled,
                                       report.rank_gates_localized,
                                       report.remap_exchanges_avoided};
      const auto raw = sim.to_raw();
      if (reference.empty()) {
        reference = raw;
        reference_report = fields;
        reference_comm_bytes = report.comm_bytes;
        for (int i = 0; i < 4; ++i) reference_remaps[i] = remaps[i];
        reference_map = sim.qubit_map().physical_table();
      } else {
        CQS_EXPECT_STATES_CLOSE(raw, reference, 0.0);
        EXPECT_EQ(fields, reference_report) << "threads " << threads;
        EXPECT_EQ(report.comm_bytes, reference_comm_bytes)
            << "threads " << threads;
        for (int i = 0; i < 4; ++i) {
          EXPECT_EQ(remaps[i], reference_remaps[i])
              << "threads " << threads << " field " << i;
        }
        EXPECT_EQ(sim.qubit_map().physical_table(), reference_map)
            << "threads " << threads;
      }
    }
  }
}

TEST(ConcurrencyTest, RemappedLossyRunsDeterministicAcrossThreadCounts) {
  // Same property at a lossy ladder level with the adaptive arbiter:
  // remap sweeps recompress through the same per-block decision machinery
  // as gates, so worker count must not leak into codec choices either.
  const int hw = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
  const auto circuit = random_circuit(11, 90, 31);
  std::vector<double> reference;
  DeterministicReport reference_report{};
  for (int threads : {1, 2, hw}) {
    core::SimConfig config;
    config.num_qubits = 11;
    config.num_ranks = 4;
    config.blocks_per_rank = 4;
    config.threads = threads;
    config.initial_level = 2;
    config.codec_policy = "adaptive";
    config.enable_qubit_remap = true;
    core::CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    const auto report = deterministic_fields(sim.report());
    const auto raw = sim.to_raw();
    if (reference.empty()) {
      reference = raw;
      reference_report = report;
    } else {
      CQS_EXPECT_STATES_CLOSE(raw, reference, 0.0);
      EXPECT_EQ(report, reference_report) << "threads " << threads;
    }
  }
}

TEST(ConcurrencyTest, PipelineStressUnderCacheThrashAndLadderEscalation) {
  // Worst-case pipeline conditions at once: a cache small enough to LRU-
  // thrash (so probe/insert interleave with staging), a budget tight
  // enough to force ladder escalation between pipelined gates, and depth 3
  // so several blocks are in flight. States and the deterministic report
  // fields must still be identical across thread counts and to the
  // sequential path.
  const int hw = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
  const auto circuit = random_circuit(10, 70, 57);
  std::vector<double> reference;
  DeterministicReport reference_report{};
  bool have_reference = false;
  for (const bool pipeline : {false, true}) {
    for (int threads : {1, 2, hw}) {
      core::SimConfig config;
      config.num_qubits = 10;
      config.num_ranks = 2;
      config.blocks_per_rank = 8;
      config.threads = threads;
      config.codec_policy = "adaptive";
      config.memory_budget_bytes = 6 * 1024;  // forces escalation mid-run
      config.cache_lines = 4;                 // guaranteed LRU thrash
      config.enable_pipeline = pipeline;
      config.pipeline_depth = 3;
      core::CompressedStateSimulator sim(config);
      sim.apply_circuit(circuit);
      const auto report = deterministic_fields(sim.report());
      const auto raw = sim.to_raw();
      if (!have_reference) {
        reference = raw;
        reference_report = report;
        have_reference = true;
      } else {
        CQS_EXPECT_STATES_CLOSE(raw, reference, 0.0)
            << "pipeline=" << pipeline << " threads=" << threads;
        EXPECT_EQ(report, reference_report)
            << "pipeline=" << pipeline << " threads=" << threads;
      }
    }
  }
}

TEST(ConcurrencyTest, CheckpointMidCircuitDrainsPipelineStages) {
  // save_checkpoint while the pipeline has been running must observe a
  // fully drained executor (every staged block recompressed and stored):
  // resuming the checkpoint and finishing the circuit must be bit-identical
  // to the uninterrupted run, pipelined or not.
  const auto circuit = random_circuit(10, 60, 71);
  const std::uint64_t half = circuit.ops().size() / 2;

  core::SimConfig config;
  config.num_qubits = 10;
  config.num_ranks = 2;
  config.blocks_per_rank = 8;
  config.threads = 2;
  config.enable_pipeline = true;
  config.pipeline_depth = 3;

  // Both runs go through the per-gate apply path (apply_circuit's fusion
  // pre-pass composes matrices and would be a different — equally valid —
  // arithmetic, which tol = 0 would flag).
  core::CompressedStateSimulator full(config);
  for (const auto& op : circuit.ops()) full.apply(op);
  const auto reference = full.to_raw();

  const auto dir = std::filesystem::temp_directory_path() /
                   "cqs_ConcurrencyTest_PipelineCheckpoint";
  std::filesystem::create_directories(dir);
  const std::string file = (dir / "mid.bin").string();

  core::CompressedStateSimulator first_half(config);
  for (std::uint64_t i = 0; i < half; ++i) {
    first_half.apply(circuit.ops()[i]);
  }
  first_half.save_checkpoint(file);

  auto resumed =
      core::CompressedStateSimulator::load_checkpoint(file, config);
  for (std::uint64_t i = half; i < circuit.ops().size(); ++i) {
    resumed.apply(circuit.ops()[i]);
  }
  CQS_EXPECT_STATES_CLOSE(resumed.to_raw(), reference, 0.0);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace cqs
