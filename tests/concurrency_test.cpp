// Concurrency properties: shared structures survive parallel hammering,
// and — critically for reproducible science — simulation results are
// bit-identical regardless of worker-thread count, because every block's
// compression is deterministic and blocks are independent.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "circuits/qaoa.hpp"
#include "circuits/supremacy.hpp"
#include "common/thread_pool.hpp"
#include "core/simulator.hpp"
#include "runtime/block_cache.hpp"
#include "runtime/block_store.hpp"
#include "test_util.hpp"

namespace cqs {
namespace {

TEST(ConcurrencyTest, BlockCacheParallelMixedOps) {
  // Key space == cache lines, so once a key is inserted it is never
  // evicted: hits are guaranteed under every interleaving, which keeps the
  // assertions deterministic while still hammering lookup/insert races.
  runtime::BlockCache cache(64);
  ThreadPool pool(8);
  std::atomic<std::uint64_t> found{0};
  pool.parallel_for(10000, [&](std::size_t i, std::size_t) {
    const std::uint64_t key = i % 64;
    Bytes out1;
    Bytes out2;
    if (cache.lookup(key, out1, out2)) {
      // Entries must round-trip intact under contention.
      ASSERT_EQ(out1.size(), 1 + key % 7);
      ++found;
    } else {
      cache.insert(key, Bytes(1 + key % 7, std::byte{1}), {});
    }
  });
  EXPECT_GT(found.load(), 0u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 10000u);
  EXPECT_FALSE(stats.disabled);
}

TEST(ConcurrencyTest, BlockCacheParallelThrashDisablesButKeepsCounting) {
  // Twice as many keys as lines is a worst-case LRU thrash: the cache may
  // legitimately self-disable (paper: "disable the compressed block cache
  // if the cache hit rate is always zero"), but the stats invariant —
  // every lookup counts exactly one hit or miss — must hold regardless of
  // interleaving or disable timing.
  runtime::BlockCache cache(64, /*disable_after_misses=*/4096);
  ThreadPool pool(8);
  pool.parallel_for(10000, [&](std::size_t i, std::size_t) {
    const std::uint64_t key = i % 128;
    Bytes out1;
    Bytes out2;
    if (!cache.lookup(key, out1, out2)) {
      cache.insert(key, Bytes(1 + key % 7, std::byte{1}), {});
    }
  });
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 10000u);
}

TEST(ConcurrencyTest, BlockStoreTotalBytesConsistent) {
  runtime::BlockStore store(256);
  ThreadPool pool(8);
  // Many rounds of concurrent updates to distinct blocks.
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(256, [&](std::size_t i, std::size_t) {
      store.set_block(static_cast<int>(i),
                      Bytes((i % 31) + round, std::byte{0}), {0});
    });
  }
  std::size_t expected = 0;
  for (int b = 0; b < 256; ++b) expected += (b % 31) + 9;
  EXPECT_EQ(store.total_bytes(), expected);
}

TEST(ConcurrencyTest, ResultsIdenticalAcrossThreadCounts) {
  const auto circuit =
      circuits::qaoa_maxcut_circuit({.num_qubits = 12});
  std::vector<double> reference;
  for (int threads : {1, 2, 8}) {
    core::SimConfig config;
    config.num_qubits = 12;
    config.num_ranks = 4;
    config.blocks_per_rank = 8;
    config.threads = threads;
    config.initial_level = 3;  // lossy: determinism must still hold
    core::CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    const auto raw = sim.to_raw();
    if (reference.empty()) {
      reference = raw;
    } else {
      // tol = 0: results must be bit-identical across thread counts.
      CQS_EXPECT_STATES_CLOSE(raw, reference, 0.0);
    }
  }
}

TEST(ConcurrencyTest, FidelityBoundIdenticalAcrossThreadCounts) {
  const auto circuit =
      circuits::supremacy_circuit({.rows = 3, .cols = 4, .depth = 6});
  double reference_bound = -1.0;
  for (int threads : {1, 8}) {
    core::SimConfig config;
    config.num_qubits = 12;
    config.num_ranks = 2;
    config.blocks_per_rank = 8;
    config.threads = threads;
    config.initial_level = 2;
    core::CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    if (reference_bound < 0.0) {
      reference_bound = sim.fidelity_bound();
    } else {
      EXPECT_DOUBLE_EQ(sim.fidelity_bound(), reference_bound);
    }
  }
}

}  // namespace
}  // namespace cqs
