// Out-of-core spill tier coverage:
//   - SpillFile unit behavior (round-trips, free-list coalescing, typed
//     failures for unwritable paths and disk-full),
//   - tiered BlockStore semantics + shared TierStats accounting,
//   - the golden differential: spill-on == spill-off at tolerance 0
//     across circuits x ranks x threads x batching,
//   - checkpoint/resume of spilled states, including resuming under a
//     different resident budget,
//   - the SpillConcurrencyTest suite doubles as the TSan target for the
//     cross-thread advise/tier-transition paths.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>

#include "core/config.hpp"
#include "core/simulator.hpp"
#include "runtime/block_store.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/spill_file.hpp"
#include "test_util.hpp"

namespace cqs {
namespace {

using test::random_circuit;

// BlockStore(int) used to be a converting constructor, so a bare block
// count silently became a whole store at call sites expecting one.
static_assert(!std::is_convertible_v<int, runtime::BlockStore>,
              "BlockStore(int) must be explicit");

Bytes make_bytes(std::size_t size, int fill) {
  return Bytes(size, static_cast<std::byte>(fill));
}

using SpillFileTest = test::TempDirFixture;

TEST_F(SpillFileTest, WriteViewRoundTrip) {
  runtime::SpillFile spill(path("spill.bin"));
  const Bytes payload = make_bytes(1000, 7);
  const auto segment = spill.write(payload);
  EXPECT_EQ(segment.size, 1000u);
  const ByteSpan view = spill.view(segment);
  ASSERT_EQ(view.size(), payload.size());
  EXPECT_TRUE(std::equal(view.begin(), view.end(), payload.begin()));
  EXPECT_EQ(spill.live_bytes(), 1000u);
  EXPECT_EQ(spill.live_segments(), 1u);
}

TEST_F(SpillFileTest, FreeListCoalescesAndReusesSpace) {
  runtime::SpillFile spill(path("spill.bin"));
  const auto a = spill.write(make_bytes(100, 1));
  const auto b = spill.write(make_bytes(200, 2));
  const auto c = spill.write(make_bytes(100, 3));
  const std::uint64_t high_water = spill.file_bytes();

  // Freeing a then b coalesces into one 300-byte hole at a's offset; a
  // 300-byte write must land exactly there instead of growing the file.
  spill.free_segment(a);
  spill.free_segment(b);
  const auto d = spill.write(make_bytes(300, 4));
  EXPECT_EQ(d.offset, a.offset);
  EXPECT_EQ(spill.file_bytes(), high_water);

  // Freeing everything lets the trailing hole shrink the high-water mark:
  // the next write starts from offset 0 again.
  spill.free_segment(c);
  spill.free_segment(d);
  EXPECT_EQ(spill.live_bytes(), 0u);
  const auto e = spill.write(make_bytes(64, 5));
  EXPECT_EQ(e.offset, 0u);
}

TEST_F(SpillFileTest, ViewsSurviveLaterGrowth) {
  // The read mapping is a fixed reservation: a span handed out before the
  // file grows by orders of magnitude must still read its bytes.
  runtime::SpillFile spill(path("spill.bin"));
  const auto first = spill.write(make_bytes(512, 9));
  const ByteSpan early_view = spill.view(first);
  for (int i = 0; i < 64; ++i) spill.write(make_bytes(64 * 1024, i));
  EXPECT_TRUE(std::all_of(early_view.begin(), early_view.end(),
                          [](std::byte v) { return v == std::byte{9}; }));
}

TEST_F(SpillFileTest, UnwritablePathThrowsTypedError) {
  EXPECT_THROW(
      runtime::SpillFile(path("no/such/directory/spill.bin")),
      runtime::SpillError);
  try {
    runtime::SpillFile spill(path("missing/spill.bin"));
    FAIL() << "expected SpillError";
  } catch (const runtime::SpillError& e) {
    EXPECT_EQ(e.code(), ENOENT);
  }
}

TEST_F(SpillFileTest, DiskFullSurfacesAsSpillError) {
  runtime::SpillFile spill(path("spill.bin"));
  runtime::ScopedFaultPlan plan("spill.write@2:enospc");
  EXPECT_NO_THROW(spill.write(make_bytes(100, 1)));
  try {
    spill.write(make_bytes(100, 2));
    FAIL() << "expected SpillError";
  } catch (const runtime::SpillError& e) {
    EXPECT_EQ(e.code(), ENOSPC);
    // The message must name the disk and carry the errno text.
    EXPECT_NE(std::string(e.what()).find("spill.bin"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(std::strerror(ENOSPC)),
              std::string::npos);
  }
  // A failed write must not leak its reserved segment, and the one-shot
  // fault must not refire.
  EXPECT_NO_THROW(spill.write(make_bytes(100, 3)));
  EXPECT_EQ(spill.live_bytes(), 200u);
  EXPECT_EQ(spill.live_segments(), 2u);
}

using TieredBlockStoreTest = test::TempDirFixture;

TEST_F(TieredBlockStoreTest, TierMovesPreserveBytesAndAccounting) {
  runtime::TierStats stats;
  runtime::SpillFile spill(path("spill.bin"));
  runtime::BlockStore store(2);
  store.attach(&stats, &spill);
  store.set_block(0, make_bytes(100, 1), {0});
  store.set_block(1, make_bytes(60, 2), {1});
  EXPECT_EQ(store.resident_bytes(), 160u);
  EXPECT_EQ(store.spilled_bytes(), 0u);

  store.spill_block(0);
  EXPECT_TRUE(store.is_spilled(0));
  EXPECT_FALSE(store.is_spilled(1));
  EXPECT_EQ(store.resident_bytes(), 60u);
  EXPECT_EQ(store.spilled_bytes(), 100u);
  EXPECT_EQ(store.total_bytes(), 160u);
  EXPECT_EQ(stats.resident_bytes.load(), 60u);
  EXPECT_EQ(stats.spilled_bytes.load(), 100u);
  EXPECT_EQ(stats.spill_events.load(), 1u);

  // The spilled payload reads back byte-identical through the view; a
  // resident block throws from the resident-only accessor.
  const ByteSpan view = store.payload_view(0);
  ASSERT_EQ(view.size(), 100u);
  EXPECT_TRUE(std::all_of(view.begin(), view.end(),
                          [](std::byte v) { return v == std::byte{1}; }));
  EXPECT_THROW(store.block(0), std::logic_error);
  EXPECT_EQ(store.block_size(0), 100u);
  EXPECT_EQ(stats.fault_events.load(), 1u);

  // Rewriting a spilled block frees its segment and makes it resident.
  store.set_block(0, make_bytes(40, 3), {0});
  EXPECT_FALSE(store.is_spilled(0));
  EXPECT_EQ(store.spilled_bytes(), 0u);
  EXPECT_EQ(store.resident_bytes(), 100u);
  EXPECT_EQ(spill.live_segments(), 0u);
  // The peak saw the 160-byte high point, not just gate boundaries.
  EXPECT_EQ(stats.peak_total_bytes.load(), 160u);
}

TEST_F(TieredBlockStoreTest, AdviseArmsReadaheadHitDetector) {
  runtime::TierStats stats;
  runtime::SpillFile spill(path("spill.bin"));
  runtime::BlockStore store(1);
  store.attach(&stats, &spill);
  store.set_block(0, make_bytes(80, 4), {0});

  store.advise(0);  // resident: no-op
  EXPECT_EQ(stats.readahead_issued.load(), 0u);

  store.spill_block(0);
  store.advise(0);
  EXPECT_EQ(stats.readahead_issued.load(), 1u);
  store.payload_view(0);
  EXPECT_EQ(stats.readahead_hits.load(), 1u);
  // The detector disarms on the first read: a second fault is not a hit.
  store.payload_view(0);
  EXPECT_EQ(stats.readahead_hits.load(), 1u);
  EXPECT_EQ(stats.fault_events.load(), 2u);
}

TEST_F(TieredBlockStoreTest, StaleCommitIsDiscarded) {
  runtime::TierStats stats;
  runtime::SpillFile spill(path("spill.bin"));
  runtime::BlockStore store(1);
  store.attach(&stats, &spill);
  store.set_block(0, make_bytes(50, 1), {0});
  const std::uint64_t generation = store.generation(0);
  const auto segment = spill.write(*store.payload_handle(0));

  // The block is rewritten while the "async write" was in flight: the
  // commit must drop the stale segment and leave the block resident.
  store.set_block(0, make_bytes(70, 2), {0});
  EXPECT_FALSE(store.commit_spill(0, segment, generation));
  EXPECT_FALSE(store.is_spilled(0));
  EXPECT_EQ(spill.live_segments(), 0u);

  // An untouched block commits normally.
  const std::uint64_t generation2 = store.generation(0);
  const auto segment2 = spill.write(*store.payload_handle(0));
  EXPECT_TRUE(store.commit_spill(0, segment2, generation2));
  EXPECT_TRUE(store.is_spilled(0));
  EXPECT_EQ(store.spilled_bytes(), 70u);
}

using SpillConfigTest = test::TempDirFixture;

TEST_F(SpillConfigTest, KnobValidation) {
  core::SimConfig config;
  config.num_qubits = 8;
  config.spill_path = path("spill.bin");
  config.resident_budget_bytes = 0;
  EXPECT_THROW(core::CompressedStateSimulator{config},
               std::invalid_argument);

  config.spill_path.clear();
  config.resident_budget_bytes = 1024;
  EXPECT_THROW(core::CompressedStateSimulator{config},
               std::invalid_argument);

  config.spill_path = path("spill.bin");
  config.readahead_blocks = -1;
  EXPECT_THROW(core::CompressedStateSimulator{config},
               std::invalid_argument);
  config.readahead_blocks = 4097;
  EXPECT_THROW(core::CompressedStateSimulator{config},
               std::invalid_argument);

  config.readahead_blocks = 4;
  EXPECT_NO_THROW(core::CompressedStateSimulator{config});
}

TEST_F(SpillConfigTest, UnwritableSpillPathFailsConstruction) {
  core::SimConfig config;
  config.num_qubits = 8;
  config.spill_path = path("no/such/dir/spill.bin");
  config.resident_budget_bytes = 1024;
  EXPECT_THROW(core::CompressedStateSimulator{config},
               runtime::SpillError);
}

TEST(SimulatorPeakTest, PeakTracksOccupancyWithoutGates) {
  // Regression for the gate-boundary-only peak sampling: a simulator that
  // never applies a gate still holds its initial compressed state, and
  // the report must say so instead of claiming a zero peak.
  core::SimConfig config;
  config.num_qubits = 8;
  core::CompressedStateSimulator sim(config);
  const auto report = sim.report();
  EXPECT_GT(report.peak_compressed_bytes, 0u);
  EXPECT_EQ(report.peak_compressed_bytes, sim.compressed_bytes());
}

using SpillSimTest = test::TempDirFixture;

core::SimConfig spill_config(const std::string& spill_path, int qubits,
                             int ranks, int threads, bool batching) {
  core::SimConfig config;
  config.num_qubits = qubits;
  config.num_ranks = ranks;
  config.blocks_per_rank = 8;
  config.threads = threads;
  config.enable_run_batching = batching;
  if (!spill_path.empty()) {
    config.spill_path = spill_path;
    // Tiny on purpose: essentially the whole state lives on the spill
    // tier, so every code path crosses it.
    config.resident_budget_bytes = 1;
  }
  return config;
}

TEST_F(SpillSimTest, SpillOnMatchesSpillOffAtToleranceZero) {
  // The golden differential of the tier design: every tier move is
  // byte-preserving, so an out-of-core run must produce the bit-identical
  // state of the in-memory run — across circuit shape, rank count,
  // thread count, and the batched vs per-gate executors.
  int case_index = 0;
  for (const int ranks : {1, 2, 4}) {
    for (const int threads : {1, 4}) {
      for (const bool batching : {true, false}) {
        const int qubits = 10;
        const auto circuit =
            random_circuit(qubits, 60, 100u + case_index);
        ++case_index;

        auto reference_config = spill_config("", qubits, ranks, threads,
                                             batching);
        core::CompressedStateSimulator reference(reference_config);
        reference.apply_circuit(circuit);
        const auto expected = reference.to_raw();

        auto config = spill_config(path("spill.bin"), qubits, ranks,
                                   threads, batching);
        core::CompressedStateSimulator sim(config);
        sim.apply_circuit(circuit);
        const auto report = sim.report();
        EXPECT_TRUE(report.spill_enabled);
        EXPECT_GT(report.spill_events, 0u)
            << "a 1-byte resident budget must actually spill";
        EXPECT_EQ(report.resident_bytes + report.spilled_bytes,
                  sim.compressed_bytes())
            << "tier split must sum to the compressed total";
        CQS_EXPECT_STATES_CLOSE(sim.to_raw(), expected, 0.0);
      }
    }
  }
}

TEST_F(SpillSimTest, PartialSpillMatchesToleranceZero) {
  // A budget in the middle of the state size exercises the transition
  // region: write-behind evictions plus a mixed resident/spilled census.
  const auto circuit = random_circuit(10, 80, 77);
  auto reference_config = spill_config("", 10, 2, 4, true);
  core::CompressedStateSimulator reference(reference_config);
  reference.apply_circuit(circuit);

  auto config = spill_config(path("spill.bin"), 10, 2, 4, true);
  config.resident_budget_bytes = reference.compressed_bytes() / 2 + 1;
  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  const auto report = sim.report();
  EXPECT_EQ(report.resident_bytes + report.spilled_bytes,
            sim.compressed_bytes());
  CQS_EXPECT_STATES_CLOSE(sim.to_raw(), reference.to_raw(), 0.0);
}

TEST_F(SpillSimTest, ReadaheadWindowSizesAreEquivalent) {
  // Readahead is a hint: any window (including none) yields the same
  // state; only the issued/hit counters may differ.
  const auto circuit = random_circuit(10, 50, 31);
  std::vector<double> reference;
  for (const int window : {0, 1, 4, 64}) {
    auto config = spill_config(path("spill.bin"), 10, 2, 4, true);
    config.readahead_blocks = window;
    core::CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    const auto raw = sim.to_raw();
    if (reference.empty()) {
      reference = raw;
    } else {
      CQS_EXPECT_STATES_CLOSE(raw, reference, 0.0);
    }
    if (window > 0) {
      EXPECT_GT(sim.report().readahead_issued, 0u);
    }
  }
}

TEST_F(SpillSimTest, MeasurementAndQueriesCrossTheSpillTier) {
  // Intermediate measurement + observable queries decompress spilled
  // blocks through payload_view; both runs must agree exactly (same rng
  // stream, byte-identical states).
  const auto circuit = random_circuit(9, 40, 5);
  auto run = [&](const std::string& spill) {
    auto config = spill_config(spill, 9, 2, 2, true);
    core::CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    Rng rng(123);
    const int outcome = sim.measure(4, rng);
    return std::tuple(outcome, sim.probability_one(2), sim.norm(),
                      sim.to_raw());
  };
  const auto [outcome_off, p_off, norm_off, raw_off] = run("");
  const auto [outcome_on, p_on, norm_on, raw_on] = run(path("spill.bin"));
  EXPECT_EQ(outcome_on, outcome_off);
  EXPECT_EQ(p_on, p_off);
  EXPECT_EQ(norm_on, norm_off);
  CQS_EXPECT_STATES_CLOSE(raw_on, raw_off, 0.0);
}

TEST_F(SpillSimTest, DiskFullMidRunSurfacesTypedError) {
  // The first spill write past the injected capacity fails; the error
  // must reach the caller as a SpillError (possibly at the next settle),
  // never a crash or a silent wrong answer.
  const auto circuit = random_circuit(10, 60, 13);
  auto config = spill_config(path("spill.bin"), 10, 1, 2, true);
  core::CompressedStateSimulator sim(config);
  runtime::ScopedFaultPlan plan("spill.write@2+:enospc");
  EXPECT_THROW(sim.apply_circuit(circuit), runtime::SpillError);
}

using SpillCheckpointTest = test::TempDirFixture;

TEST_F(SpillCheckpointTest, SpilledStateRoundTripsThroughCheckpoint) {
  // Save while most blocks live on the spill tier; resume (a) with spill
  // under the same budget, (b) with spill under a different budget, and
  // (c) entirely in-memory. All three must be bit-identical.
  const auto circuit = random_circuit(10, 60, 55);
  auto config = spill_config(path("spill.bin"), 10, 2, 4, true);
  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  const auto expected = sim.to_raw();
  const std::string ckpt = path("spilled.ckpt");
  sim.save_checkpoint(ckpt);

  {
    auto resume = spill_config(path("resume_same.bin"), 10, 2, 4, true);
    auto restored =
        core::CompressedStateSimulator::load_checkpoint(ckpt, resume);
    EXPECT_GT(restored.report().spilled_bytes, 0u);
    CQS_EXPECT_STATES_CLOSE(restored.to_raw(), expected, 0.0);
  }
  {
    // A resume is free to re-tier under a different budget.
    auto resume = spill_config(path("resume_big.bin"), 10, 2, 4, true);
    resume.resident_budget_bytes = std::size_t{1} << 30;
    auto restored =
        core::CompressedStateSimulator::load_checkpoint(ckpt, resume);
    CQS_EXPECT_STATES_CLOSE(restored.to_raw(), expected, 0.0);
  }
  {
    auto resume = spill_config("", 10, 2, 4, true);
    auto restored =
        core::CompressedStateSimulator::load_checkpoint(ckpt, resume);
    EXPECT_EQ(restored.report().spilled_bytes, 0u);
    CQS_EXPECT_STATES_CLOSE(restored.to_raw(), expected, 0.0);
  }
}

TEST_F(SpillCheckpointTest, InMemoryCheckpointResumesUnderTinyBudget) {
  // Regression: a budget-1 resume constructor leaves write-behind spills
  // of the initial |0...0> blocks in flight; load_checkpoint used to swap
  // the stores under them, and the later settle passed commit_spill's
  // generation guard (both slot sets count from 1) — silently re-tiering
  // every restored resident block onto a stale pre-restore segment. An
  // entirely in-memory checkpoint maximizes the exposure: nothing gets
  // re-spilled before the settle, so every block is at risk.
  const auto circuit = random_circuit(10, 60, 63);
  auto config = spill_config("", 10, 2, 4, true);
  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  const auto expected = sim.to_raw();
  const std::string ckpt = path("inmem.ckpt");
  sim.save_checkpoint(ckpt);

  auto resume = spill_config(path("resume.bin"), 10, 2, 4, true);
  auto restored =
      core::CompressedStateSimulator::load_checkpoint(ckpt, resume);
  EXPECT_GT(restored.report().spilled_bytes, 0u)
      << "the 1-byte budget must re-tier the restored state";
  CQS_EXPECT_STATES_CLOSE(restored.to_raw(), expected, 0.0);
}

TEST_F(SpillCheckpointTest, SavingDoesNotCountAsFaults) {
  // Checkpoint serialization reads spilled blocks through the raw
  // (non-accounting) view: a save must not inflate the fault count or
  // consume pending readahead hits.
  const auto circuit = random_circuit(10, 40, 17);
  auto config = spill_config(path("spill.bin"), 10, 2, 2, true);
  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  const auto before = sim.report();
  ASSERT_GT(before.spilled_bytes, 0u);
  sim.save_checkpoint(path("telemetry.ckpt"));
  const auto after = sim.report();
  EXPECT_EQ(after.fault_events, before.fault_events);
  EXPECT_EQ(after.readahead_hits, before.readahead_hits);
}

TEST_F(SpillCheckpointTest, ResumedSpilledRunFinishesIdentically) {
  // Checkpoint mid-circuit on the spill tier, resume out-of-core, finish;
  // compare against the identically split in-memory run (the same cut, so
  // fusion/batching group boundaries match and tolerance 0 is exact).
  const auto circuit = random_circuit(10, 80, 91);
  qsim::Circuit first_half(10);
  for (std::size_t i = 0; i < 40; ++i) first_half.append(circuit.ops()[i]);

  auto reference_config = spill_config("", 10, 2, 2, true);
  core::CompressedStateSimulator reference(reference_config);
  reference.apply_circuit(first_half);
  reference.resume_circuit(circuit);

  auto config = spill_config(path("spill.bin"), 10, 2, 2, true);
  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(first_half);
  const std::string ckpt = path("mid.ckpt");
  sim.save_checkpoint(ckpt);

  auto resume_config = spill_config(path("resume.bin"), 10, 2, 2, true);
  auto restored =
      core::CompressedStateSimulator::load_checkpoint(ckpt, resume_config);
  restored.resume_circuit(circuit);
  CQS_EXPECT_STATES_CLOSE(restored.to_raw(), reference.to_raw(), 0.0);
}

using SpillConcurrencyTest = test::TempDirFixture;

TEST_F(SpillConcurrencyTest, BitIdenticalAndCountsStableAcrossThreads) {
  // Streaming spill decides what to spill from the mutation set alone and
  // the write-behind scan runs on the main thread, so with the block
  // cache off (whose hit/miss split is timing-dependent) the spill and
  // fault counts — not just the state — must agree across worker counts.
  const auto circuit = random_circuit(10, 60, 21);
  std::vector<double> reference;
  std::uint64_t reference_spills = 0;
  std::uint64_t reference_faults = 0;
  for (const int threads : {1, 2, 8}) {
    auto config = spill_config(path("spill.bin"), 10, 2, threads, true);
    config.enable_cache = false;
    core::CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    const auto report = sim.report();
    const auto raw = sim.to_raw();
    if (reference.empty()) {
      reference = raw;
      reference_spills = report.spill_events;
      reference_faults = report.fault_events;
      EXPECT_GT(reference_spills, 0u);
    } else {
      CQS_EXPECT_STATES_CLOSE(raw, reference, 0.0);
      EXPECT_EQ(report.spill_events, reference_spills)
          << "threads " << threads;
      EXPECT_EQ(report.fault_events, reference_faults)
          << "threads " << threads;
    }
  }
}

TEST_F(SpillConcurrencyTest, PipelinedExecutorCrossesTheSpillTier) {
  // The pipelined executor advises from whichever worker claims a unit
  // while owners transition tiers — the TSan target for the atomic tier
  // fields. States must still match the sequential spill-off reference.
  const auto circuit = random_circuit(10, 50, 47);
  auto reference_config = spill_config("", 10, 1, 1, true);
  reference_config.enable_pipeline = false;
  core::CompressedStateSimulator reference(reference_config);
  reference.apply_circuit(circuit);

  auto config = spill_config(path("spill.bin"), 10, 1, 8, true);
  config.enable_pipeline = true;
  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  CQS_EXPECT_STATES_CLOSE(sim.to_raw(), reference.to_raw(), 0.0);
}

}  // namespace
}  // namespace cqs
