// Property/fuzz suite for the logical->physical qubit map: random
// permutations must compose/invert to identity, translate indices
// bijectively, round-trip their serialized form, respect segment routing
// through a partition, and non-permutation inputs must be rejected.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "runtime/partition.hpp"
#include "runtime/qubit_map.hpp"
#include "test_util.hpp"

namespace cqs {
namespace {

using runtime::Partition;
using runtime::QubitMap;

std::vector<int> random_permutation(int n, Rng& rng) {
  std::vector<int> table(n);
  std::iota(table.begin(), table.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    const int j = static_cast<int>(rng.next_below(i + 1));
    std::swap(table[i], table[j]);
  }
  return table;
}

TEST(QubitMapTest, IdentityBasics) {
  const QubitMap map = QubitMap::identity(8);
  EXPECT_EQ(map.size(), 8);
  EXPECT_TRUE(map.is_identity());
  for (int q = 0; q < 8; ++q) {
    EXPECT_EQ(map.physical(q), q);
    EXPECT_EQ(map.logical(q), q);
  }
  EXPECT_TRUE(QubitMap().empty());
}

TEST(QubitMapTest, RelabelSwapsPhysicalHomes) {
  QubitMap map = QubitMap::identity(6);
  map.relabel(1, 4);
  EXPECT_EQ(map.physical(1), 4);
  EXPECT_EQ(map.physical(4), 1);
  EXPECT_EQ(map.logical(4), 1);
  EXPECT_EQ(map.logical(1), 4);
  EXPECT_FALSE(map.is_identity());
  map.relabel(1, 4);
  EXPECT_TRUE(map.is_identity());
}

TEST(QubitMapTest, SwapPhysicalTradesLogicalOccupants) {
  QubitMap map = QubitMap::identity(6);
  map.relabel(0, 5);  // logical 0 lives at 5, logical 5 at 0
  map.swap_physical(5, 2);
  EXPECT_EQ(map.logical(2), 0);
  EXPECT_EQ(map.physical(0), 2);
  EXPECT_EQ(map.logical(5), 2);
  EXPECT_EQ(map.physical(2), 5);
  EXPECT_EQ(map.physical(5), 0);  // untouched occupant stays
}

TEST(QubitMapTest, FuzzInverseAndCompositionRoundTrip) {
  Rng rng(0x9a7b);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(24));
    const auto a = QubitMap::from_physical(random_permutation(n, rng));
    const auto b = QubitMap::from_physical(random_permutation(n, rng));

    EXPECT_TRUE(a.composed(a.inverted()).is_identity());
    EXPECT_TRUE(a.inverted().composed(a).is_identity());
    EXPECT_EQ(a.inverted().inverted(), a);

    // Composition agrees with sequential application.
    const auto ab = a.composed(b);
    for (int q = 0; q < n; ++q) {
      EXPECT_EQ(ab.physical(q), b.physical(a.physical(q)));
      EXPECT_EQ(a.logical(a.physical(q)), q);
    }
  }
}

TEST(QubitMapTest, FuzzIndexTranslationIsBijective) {
  Rng rng(0x51c6);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(15));
    const auto map = QubitMap::from_physical(random_permutation(n, rng));
    std::set<std::uint64_t> seen;
    for (int rep = 0; rep < 64; ++rep) {
      const std::uint64_t logical = rng.next_below(std::uint64_t{1} << n);
      const std::uint64_t physical = map.to_physical_index(logical);
      EXPECT_EQ(map.to_logical_index(physical), logical);
      // Bit l of the logical index must land at bit physical(l).
      for (int l = 0; l < n; ++l) {
        EXPECT_EQ((physical >> map.physical(l)) & 1, (logical >> l) & 1);
      }
      seen.insert(physical);
    }
    // No two distinct logical indices collided (bijective on the sample).
    std::set<std::uint64_t> logical_seen;
    for (std::uint64_t p : seen) logical_seen.insert(map.to_logical_index(p));
    EXPECT_EQ(logical_seen.size(), seen.size());
  }
}

TEST(QubitMapTest, FuzzSerializedRoundTrip) {
  Rng rng(0xfeed);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(33));
    const auto map = QubitMap::from_physical(random_permutation(n, rng));
    Bytes buffer;
    map.serialize(buffer);
    std::size_t offset = 0;
    const auto decoded = QubitMap::deserialize(buffer, offset);
    EXPECT_EQ(decoded, map);
    EXPECT_EQ(offset, buffer.size());
  }
}

TEST(QubitMapTest, RejectsNonPermutationTables) {
  EXPECT_THROW(QubitMap::from_physical({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(QubitMap::from_physical({0, 3, 1}), std::invalid_argument);
  EXPECT_THROW(QubitMap::from_physical({-1, 0, 1}), std::invalid_argument);
  EXPECT_THROW(QubitMap::from_physical({2, 2, 2}), std::invalid_argument);
}

TEST(QubitMapTest, DeserializeRejectsCorruption) {
  // Duplicate entry.
  Bytes dup;
  put_varint(dup, 3);
  for (int v : {0, 0, 1}) put_varint(dup, v);
  std::size_t offset = 0;
  EXPECT_THROW(QubitMap::deserialize(dup, offset), std::runtime_error);

  // Out-of-range entry.
  Bytes oob;
  put_varint(oob, 2);
  for (int v : {0, 7}) put_varint(oob, v);
  offset = 0;
  EXPECT_THROW(QubitMap::deserialize(oob, offset), std::runtime_error);

  // Truncated table.
  Bytes truncated;
  put_varint(truncated, 4);
  put_varint(truncated, 0);
  offset = 0;
  EXPECT_THROW(QubitMap::deserialize(truncated, offset), std::out_of_range);

  // Implausible count (corrupted length prefix).
  Bytes huge;
  put_varint(huge, 1u << 20);
  offset = 0;
  EXPECT_THROW(QubitMap::deserialize(huge, offset), std::runtime_error);

  // An entry that would wrap modulo 2^32 to a valid small position must
  // be rejected by the pre-narrowing range check, not silently accepted.
  Bytes wrap;
  put_varint(wrap, 3);
  put_varint(wrap, std::uint64_t{1} << 32);  // wraps to 0 if narrowed
  put_varint(wrap, 1);
  put_varint(wrap, 2);
  offset = 0;
  EXPECT_THROW(QubitMap::deserialize(wrap, offset), std::runtime_error);
}

TEST(QubitMapTest, SegmentQueriesRouteThroughTheMap) {
  // 8 qubits as 4 ranks x 2 blocks: offset = [0,5), block = {5}, rank =
  // {6,7} — the exact split the simulator's routing uses.
  const Partition partition = runtime::make_partition(8, 4, 2);
  ASSERT_EQ(partition.segment_begin(Partition::Segment::kRank), 6);
  ASSERT_EQ(partition.segment_size(Partition::Segment::kOffset), 5);

  QubitMap map = QubitMap::identity(8);
  EXPECT_EQ(map.segment_of(partition, 6), Partition::Segment::kRank);
  EXPECT_EQ(map.segment_of(partition, 0), Partition::Segment::kOffset);

  // Exchanging a hot rank position with a cold offset position flips the
  // segment answer for exactly the two logical occupants involved.
  map.swap_physical(6, 2);
  EXPECT_EQ(map.segment_of(partition, 6), Partition::Segment::kOffset);
  EXPECT_EQ(map.segment_of(partition, 2), Partition::Segment::kRank);
  EXPECT_EQ(map.local_bit(partition, 6), 2);
  EXPECT_EQ(map.local_bit(partition, 2), 0);
  for (int q : {0, 1, 3, 4, 5, 7}) {
    EXPECT_EQ(map.segment_of(partition, q), partition.segment_of(q));
  }

  // Property: under any permutation, the map's segment answer is the
  // partition's answer about the physical home.
  Rng rng(0xa11ce);
  for (int trial = 0; trial < 100; ++trial) {
    const auto fuzzed = QubitMap::from_physical(random_permutation(8, rng));
    for (int q = 0; q < 8; ++q) {
      EXPECT_EQ(fuzzed.segment_of(partition, q),
                partition.segment_of(fuzzed.physical(q)));
      EXPECT_EQ(fuzzed.local_bit(partition, q),
                partition.local_bit(fuzzed.physical(q)));
    }
  }
}

}  // namespace
}  // namespace cqs
