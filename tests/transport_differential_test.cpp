// Differential suite for the multi-process socket transport: a run whose
// exchanges physically traverse the driver<->rank-process wire must
// produce a state bit-identical (tol = 0) to the in-process loopback
// transport on every paper workload x rank layout x scheduler mode —
// frames carry bytes, never arithmetic. Also pins the wire accounting
// identity (socket payload bytes == 2x logical bytes_moved, loopback
// == 1x), checkpoint/resume of a multi-process run, and that transport
// failures reject a simulator exchange with a typed error.
//
// The whole file needs the CQS_TRANSPORT_SOCKET build.
#include <gtest/gtest.h>

#ifdef CQS_HAVE_SOCKET_TRANSPORT

#include <algorithm>
#include <string>
#include <vector>

#include "circuits/grover.hpp"
#include "circuits/qaoa.hpp"
#include "circuits/qft.hpp"
#include "circuits/supremacy.hpp"
#include "core/simulator.hpp"
#include "qsim/circuit.hpp"
#include "runtime/socket_transport.hpp"
#include "runtime/transport.hpp"
#include "test_util.hpp"

namespace cqs {
namespace {

struct NamedCircuit {
  std::string name;
  qsim::Circuit circuit;
};

/// The four paper workloads the issue's differential matrix names, at
/// sweep scale.
std::vector<NamedCircuit> workloads() {
  std::vector<NamedCircuit> all;
  all.push_back({"qft", circuits::qft_circuit({.num_qubits = 10})});
  all.push_back({"grover",
                 circuits::grover_circuit({.data_qubits = 4,
                                           .marked_state = 9,
                                           .iterations = 2})});
  all.push_back({"qaoa", circuits::qaoa_maxcut_circuit({.num_qubits = 10})});
  all.push_back({"supremacy",
                 circuits::supremacy_circuit(
                     {.rows = 3, .cols = 3, .depth = 5})});
  return all;
}

core::SimConfig base_config(int num_qubits, int num_ranks,
                            const std::string& transport) {
  core::SimConfig config;
  config.num_qubits = num_qubits;
  config.num_ranks = num_ranks;
  config.blocks_per_rank = std::max(4, 32 / num_ranks);
  config.transport = transport;
  return config;
}

TEST(TransportDifferentialTest, SocketMatchesLoopbackBitForBit) {
  // workloads x ranks {2, 4} x {batched, per-gate}, at a lossy ladder
  // level so compressed payloads (not just raw blocks) ride the wire.
  for (const auto& [name, circuit] : workloads()) {
    for (int ranks : {2, 4}) {
      for (bool batched : {true, false}) {
        core::SimConfig loop =
            base_config(circuit.num_qubits(), ranks, "loopback");
        loop.enable_run_batching = batched;
        loop.initial_level = 2;
        core::CompressedStateSimulator reference_sim(loop);
        reference_sim.apply_circuit(circuit);
        const auto reference = reference_sim.to_raw();
        const auto ref_report = reference_sim.report();

        core::SimConfig sock = loop;
        sock.transport = "socket";
        core::CompressedStateSimulator sim(sock);
        sim.apply_circuit(circuit);
        CQS_EXPECT_STATES_CLOSE(sim.to_raw(), reference, 0.0)
            << name << " ranks=" << ranks << " batched=" << batched;

        // Identical logical traffic, and the out-and-back wire identity.
        const auto report = sim.report();
        EXPECT_EQ(report.comm_bytes, ref_report.comm_bytes)
            << name << " ranks=" << ranks << " batched=" << batched;
        EXPECT_EQ(report.comm_messages, ref_report.comm_messages);
        EXPECT_EQ(report.transport, "socket");
        EXPECT_EQ(report.wire_payload_bytes, 2 * report.comm_bytes);
        EXPECT_EQ(ref_report.wire_payload_bytes, ref_report.comm_bytes);
      }
    }
  }
}

TEST(TransportDifferentialTest, TcpEndpointMatchesLoopback) {
  const auto circuit = circuits::qft_circuit({.num_qubits = 10});
  core::SimConfig loop = base_config(10, 2, "loopback");
  core::CompressedStateSimulator reference_sim(loop);
  reference_sim.apply_circuit(circuit);

  core::SimConfig sock = loop;
  sock.transport = "socket";
  sock.socket_endpoint = "tcp";
  core::CompressedStateSimulator sim(sock);
  sim.apply_circuit(circuit);
  CQS_EXPECT_STATES_CLOSE(sim.to_raw(), reference_sim.to_raw(), 0.0);
}

class TransportCheckpointTest : public test::TempDirFixture {};

TEST_F(TransportCheckpointTest, MultiProcessRunCheckpointsAndResumes) {
  // Save mid-circuit from a socket run, restore into a fresh socket
  // simulator (its own new rank processes), resume, and match an
  // uninterrupted loopback run bit-for-bit.
  const auto circuit = circuits::qft_circuit({.num_qubits = 10});
  const std::size_t cut = circuit.size() / 2;
  qsim::Circuit head(circuit.num_qubits());
  for (std::size_t i = 0; i < cut; ++i) head.append(circuit.ops()[i]);

  core::SimConfig sock = base_config(10, 2, "socket");
  core::CompressedStateSimulator first(sock);
  first.apply_circuit(head);
  first.save_checkpoint(path("socket.ckpt"));

  auto resumed = core::CompressedStateSimulator::load_checkpoint(
      path("socket.ckpt"), sock);
  resumed.resume_circuit(circuit);

  core::SimConfig loop = base_config(10, 2, "loopback");
  core::CompressedStateSimulator full(loop);
  full.apply_circuit(circuit);
  CQS_EXPECT_STATES_CLOSE(resumed.to_raw(), full.to_raw(), 0.0);
}

TEST(TransportFaultTest, CorruptedFrameFailsTheRunWithTypedError) {
  // Fault injection through the simulator: corrupt one echo and the next
  // cross-rank exchange must reject with kFrameCorrupt — the run fails
  // cleanly (processes still reaped by the destructor), never hangs.
  core::SimConfig sock = base_config(10, 2, "socket");
  sock.enable_cache = false;
  core::CompressedStateSimulator sim(sock);
  auto* transport = dynamic_cast<runtime::SocketTransport*>(
      &sim.comm().transport());
  ASSERT_NE(transport, nullptr);
  transport->inject_fault(1, runtime::wire::FrameType::kCorruptNext);
  const auto circuit = circuits::qft_circuit({.num_qubits = 10});
  try {
    sim.apply_circuit(circuit);
    FAIL() << "expected TransportError";
  } catch (const runtime::TransportError& e) {
    EXPECT_EQ(e.kind(), runtime::TransportError::Kind::kFrameCorrupt);
  }
}

TEST(TransportFaultTest, DeadRankFailsTheRunWithTypedError) {
  core::SimConfig sock = base_config(10, 2, "socket");
  sock.enable_cache = false;
  sock.rank_timeout_ms = 1000;
  core::CompressedStateSimulator sim(sock);
  auto* transport = dynamic_cast<runtime::SocketTransport*>(
      &sim.comm().transport());
  ASSERT_NE(transport, nullptr);
  transport->inject_fault(1, runtime::wire::FrameType::kDie);
  const auto circuit = circuits::qft_circuit({.num_qubits = 10});
  try {
    sim.apply_circuit(circuit);
    FAIL() << "expected TransportError";
  } catch (const runtime::TransportError& e) {
    EXPECT_TRUE(e.kind() == runtime::TransportError::Kind::kRankDead ||
                e.kind() == runtime::TransportError::Kind::kTimeout);
    EXPECT_EQ(e.rank(), 1);
  }
  // Clean shutdown: every rank process joins despite the mid-run death.
  const auto procs = transport->join();
  ASSERT_EQ(procs.size(), 2u);
  for (const auto& proc : procs) EXPECT_TRUE(proc.joined);
}

}  // namespace
}  // namespace cqs

#else  // !CQS_HAVE_SOCKET_TRANSPORT

#include "runtime/transport.hpp"

namespace cqs {
namespace {

TEST(TransportDifferentialTest, SkippedWithoutSocketBuild) {
  GTEST_SKIP() << "socket transport not built "
                  "(-DCQS_TRANSPORT_SOCKET=ON enables this suite)";
  (void)runtime::socket_transport_available();
}

}  // namespace
}  // namespace cqs

#endif  // CQS_HAVE_SOCKET_TRANSPORT
