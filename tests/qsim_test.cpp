// Unit tests for the quantum substrate: gate matrices, circuit IR, and the
// dense reference simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "qsim/circuit.hpp"
#include "qsim/gates.hpp"
#include "qsim/state_vector.hpp"

namespace cqs::qsim {
namespace {

constexpr double kTol = 1e-12;

TEST(GatesTest, AllMatricesUnitary) {
  for (auto kind :
       {GateKind::kH, GateKind::kX, GateKind::kY, GateKind::kZ, GateKind::kS,
        GateKind::kSdg, GateKind::kT, GateKind::kTdg, GateKind::kSqrtX,
        GateKind::kSqrtY, GateKind::kSqrtW, GateKind::kCX, GateKind::kCZ}) {
    const GateOp op{kind, 0};
    EXPECT_TRUE(gate_matrix(op).approx_unitary()) << gate_name(kind);
  }
  for (double theta : {0.1, 1.0, 2.5, -0.7}) {
    for (auto kind : {GateKind::kRx, GateKind::kRy, GateKind::kRz,
                      GateKind::kPhase, GateKind::kCPhase}) {
      const GateOp op{kind, 0, {-1, -1}, {theta, 0, 0}};
      EXPECT_TRUE(gate_matrix(op).approx_unitary()) << gate_name(kind);
    }
    const GateOp u3{GateKind::kU3, 0, {-1, -1}, {theta, 0.3, -0.8}};
    EXPECT_TRUE(gate_matrix(u3).approx_unitary());
  }
}

TEST(GatesTest, SqrtGatesSquareToTheirBase) {
  auto square = [](GateKind kind) {
    const Mat2 m = gate_matrix({kind, 0});
    return m * m;
  };
  const Mat2 x2 = square(GateKind::kSqrtX);
  EXPECT_NEAR(std::abs(x2.u01 - Amplitude(1, 0)), 0.0, kTol);
  EXPECT_NEAR(std::abs(x2.u00), 0.0, kTol);
  const Mat2 y2 = square(GateKind::kSqrtY);
  EXPECT_NEAR(std::abs(y2.u01 - Amplitude(0, -1)), 0.0, kTol);
  const Mat2 w2 = square(GateKind::kSqrtW);
  // W = [[0, e^{-i pi/4}], [e^{i pi/4}, 0]].
  EXPECT_NEAR(std::abs(w2.u01 - std::polar(1.0, -std::numbers::pi / 4)), 0.0,
              kTol);
  EXPECT_NEAR(std::abs(w2.u10 - std::polar(1.0, std::numbers::pi / 4)), 0.0,
              kTol);
}

TEST(GatesTest, DiagonalClassification) {
  EXPECT_TRUE(is_diagonal(GateKind::kZ));
  EXPECT_TRUE(is_diagonal(GateKind::kCZ));
  EXPECT_TRUE(is_diagonal(GateKind::kRz));
  EXPECT_FALSE(is_diagonal(GateKind::kH));
  EXPECT_FALSE(is_diagonal(GateKind::kCX));
}

TEST(CircuitTest, BuilderValidatesIndices) {
  Circuit c(3);
  EXPECT_THROW(c.h(3), std::out_of_range);
  EXPECT_THROW(c.cx(1, 1), std::invalid_argument);
  EXPECT_THROW(c.ccx(0, 0, 1), std::invalid_argument);
  EXPECT_NO_THROW(c.ccx(0, 1, 2));
}

TEST(CircuitTest, DepthGreedyPacking) {
  Circuit c(3);
  c.h(0).h(1).h(2);  // one layer
  EXPECT_EQ(c.depth(), 1);
  c.cx(0, 1);  // second layer
  EXPECT_EQ(c.depth(), 2);
  c.h(2);  // fits into layer 2
  EXPECT_EQ(c.depth(), 2);
  c.cx(1, 2);  // third layer
  EXPECT_EQ(c.depth(), 3);
}

TEST(CircuitTest, HistogramCountsKinds) {
  Circuit c(2);
  c.h(0).h(1).cx(0, 1).h(0);
  const auto hist = c.gate_histogram();
  for (const auto& [name, count] : hist) {
    if (name == "h") EXPECT_EQ(count, 3u);
    if (name == "cx") EXPECT_EQ(count, 1u);
  }
}

TEST(StateVectorTest, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.size(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - Amplitude(1, 0)), 0.0, kTol);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(StateVectorTest, HadamardCreatesUniformSuperposition) {
  StateVector sv(4);
  Circuit c(4);
  for (int q = 0; q < 4; ++q) c.h(q);
  sv.apply_circuit(c);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitude(i)), 0.25, kTol);
  }
}

TEST(StateVectorTest, BellState) {
  StateVector sv(2);
  Circuit c(2);
  c.h(0).cx(0, 1);
  sv.apply_circuit(c);
  EXPECT_NEAR(std::abs(sv.amplitude(0b00)), std::numbers::sqrt2 / 2, kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(0b11)), std::numbers::sqrt2 / 2, kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 0.0, kTol);
}

TEST(StateVectorTest, XFlipsTargetBitOnly) {
  StateVector sv(5);
  sv.apply({GateKind::kX, 3});
  EXPECT_NEAR(std::abs(sv.amplitude(0b01000)), 1.0, kTol);
}

TEST(StateVectorTest, ToffoliTruthTable) {
  for (std::uint64_t input = 0; input < 8; ++input) {
    StateVector sv(3);
    for (int q = 0; q < 3; ++q) {
      if ((input >> q) & 1u) sv.apply({GateKind::kX, q});
    }
    sv.apply({GateKind::kCCX, 2, {0, 1}});
    const std::uint64_t expected =
        (input & 3u) == 3u ? input ^ 4u : input;
    EXPECT_NEAR(std::abs(sv.amplitude(expected)), 1.0, kTol) << input;
  }
}

TEST(StateVectorTest, SwapExchangesQubits) {
  StateVector sv(3);
  sv.apply({GateKind::kX, 0});
  sv.apply({GateKind::kSwap, 0, {2, -1}});
  EXPECT_NEAR(std::abs(sv.amplitude(0b100)), 1.0, kTol);
}

TEST(StateVectorTest, NormPreservedUnderRandomCircuit) {
  Rng rng(77);
  StateVector sv(8);
  Circuit c(8);
  for (int i = 0; i < 200; ++i) {
    const int q = static_cast<int>(rng.next_below(8));
    switch (rng.next_below(5)) {
      case 0: c.h(q); break;
      case 1: c.t(q); break;
      case 2: c.rx(q, rng.next_double() * 3.0); break;
      case 3: {
        const int p = static_cast<int>(rng.next_below(8));
        if (p != q) c.cx(p, q);
        break;
      }
      case 4: c.rz(q, rng.next_double()); break;
    }
  }
  sv.apply_circuit(c);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
}

TEST(StateVectorTest, ControlledGateSkipsControlZero) {
  StateVector sv(2);
  sv.apply({GateKind::kCX, 1, {0, -1}});  // control |0>: no-op
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, kTol);
}

TEST(StateVectorTest, ProbabilityOne) {
  StateVector sv(2);
  Circuit c(2);
  c.h(0);
  sv.apply_circuit(c);
  EXPECT_NEAR(sv.probability_one(0), 0.5, kTol);
  EXPECT_NEAR(sv.probability_one(1), 0.0, kTol);
}

TEST(StateVectorTest, MeasurementCollapsesAndRenormalizes) {
  Rng rng(5);
  StateVector sv(2);
  Circuit c(2);
  c.h(0).cx(0, 1);
  sv.apply_circuit(c);
  const int outcome = sv.measure(0, rng);
  // Bell state: qubit 1 must equal qubit 0 after measurement.
  EXPECT_NEAR(sv.probability_one(1), static_cast<double>(outcome), kTol);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(StateVectorTest, SampleFollowsDistribution) {
  Rng rng(9);
  StateVector sv(1);
  sv.apply({GateKind::kH, 0});
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    ones += static_cast<int>(sv.sample(rng));
  }
  EXPECT_NEAR(ones, 5000, 300);
}

TEST(StateVectorTest, FidelityOfIdenticalStatesIsOne) {
  StateVector a(4);
  StateVector b(4);
  Circuit c(4);
  c.h(0).cx(0, 1).t(2).h(3);
  a.apply_circuit(c);
  b.apply_circuit(c);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
}

TEST(StateVectorTest, FidelityOfOrthogonalStatesIsZero) {
  StateVector a(1);
  StateVector b(1);
  b.apply({GateKind::kX, 0});
  EXPECT_NEAR(a.fidelity(b), 0.0, kTol);
}

TEST(StateVectorTest, RawFidelityMatchesComplexFidelity) {
  StateVector a(5);
  StateVector b(5);
  Circuit ca(5);
  Circuit cb(5);
  ca.h(0).cx(0, 3).rz(2, 0.7);
  cb.h(0).cx(0, 3).rz(2, 0.71);
  a.apply_circuit(ca);
  b.apply_circuit(cb);
  EXPECT_NEAR(state_fidelity(a.raw(), b.raw()), a.fidelity(b), kTol);
}

TEST(StateVectorTest, QftOnBasisStateGivesUniformMagnitudes) {
  // QFT of a computational basis state: all output amplitudes have
  // magnitude 2^{-n/2}.
  StateVector sv(5);
  sv.apply({GateKind::kX, 1});
  Circuit qft(5);
  for (int i = 4; i >= 0; --i) {
    qft.h(i);
    for (int j = i - 1; j >= 0; --j) {
      qft.cphase(j, i, std::numbers::pi / static_cast<double>(1 << (i - j)));
    }
  }
  sv.apply_circuit(qft);
  for (std::uint64_t i = 0; i < sv.size(); ++i) {
    EXPECT_NEAR(std::abs(sv.amplitude(i)), 1.0 / std::sqrt(32.0), 1e-10);
  }
}

}  // namespace
}  // namespace cqs::qsim
