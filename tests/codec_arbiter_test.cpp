// Codec arbiter: block statistics, policy parsing, the adaptive decision
// rule with hysteresis, and the simulator-level behavior — per-block codec
// mix, fidelity accounting that only charges lossy-written blocks, and
// cache interplay.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuits/grover.hpp"
#include "circuits/supremacy.hpp"
#include "compression/compressor.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"
#include "runtime/codec_arbiter.hpp"
#include "test_util.hpp"

namespace cqs {
namespace {

using core::CompressedStateSimulator;
using core::SimConfig;
using runtime::ArbiterConfig;
using runtime::BlockStats;
using runtime::CodecArbiter;
using runtime::CodecPolicy;
using runtime::compute_block_stats;

TEST(BlockStatsTest, AllZeros) {
  const std::vector<double> zeros(128, 0.0);
  const BlockStats stats = compute_block_stats(zeros);
  EXPECT_DOUBLE_EQ(stats.zero_fraction, 1.0);
  EXPECT_DOUBLE_EQ(stats.spikiness, 0.0);
  EXPECT_DOUBLE_EQ(stats.dynamic_range, 0.0);
}

TEST(BlockStatsTest, EmptyBlockCountsAsAllZero) {
  const BlockStats stats = compute_block_stats({});
  EXPECT_DOUBLE_EQ(stats.zero_fraction, 1.0);
}

TEST(BlockStatsTest, UniformMagnitudesHaveZeroDynamicRange) {
  std::vector<double> data(64, 0.25);
  data[3] = -0.25;  // sign must not affect magnitude statistics
  const BlockStats stats = compute_block_stats(data);
  EXPECT_DOUBLE_EQ(stats.zero_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.spikiness, 1.0);
  EXPECT_DOUBLE_EQ(stats.dynamic_range, 0.0);
}

TEST(BlockStatsTest, KnownMixedBlock) {
  // 4 zeros, nonzeros {1, 1, 2, 8}: zf = 0.5, mean = 3, max/mean = 8/3,
  // range = log2(8/1) = 3 bits.
  const std::vector<double> data = {0, 1, 0, -1, 2, 0, -8, 0};
  const BlockStats stats = compute_block_stats(data);
  EXPECT_DOUBLE_EQ(stats.zero_fraction, 0.5);
  EXPECT_DOUBLE_EQ(stats.spikiness, 8.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.dynamic_range, 3.0);
}

TEST(BlockStatsTest, SpikyGeneratorReadsAsWideDynamicRange) {
  const auto spiky = test::spiky_qaoa_like(1024, 7);
  const auto dense = test::dense_supremacy_like(1024, 7);
  // The QAOA-like generator spans ~20 binary orders of magnitude; the
  // Porter-Thomas-like one is comparatively flat.
  EXPECT_GT(compute_block_stats(spiky).spikiness,
            compute_block_stats(dense).spikiness);
}

TEST(CodecPolicyTest, ParsesKnownNamesAndRejectsUnknown) {
  EXPECT_EQ(runtime::parse_codec_policy("fixed"), CodecPolicy::kFixed);
  EXPECT_EQ(runtime::parse_codec_policy("adaptive"), CodecPolicy::kAdaptive);
  EXPECT_THROW(runtime::parse_codec_policy("oracle"), std::invalid_argument);
  EXPECT_THROW(runtime::parse_codec_policy(""), std::invalid_argument);
}

TEST(CodecIdTest, StableRoundTrip) {
  // Ids are an on-disk format (checkpoint v3): the mapping must stay put.
  EXPECT_EQ(compression::codec_id("zstd"), compression::kLosslessCodecId);
  for (const auto& name : compression::compressor_names()) {
    EXPECT_EQ(compression::codec_name_of(compression::codec_id(name)), name);
  }
  EXPECT_THROW(compression::codec_id("nope"), std::invalid_argument);
  EXPECT_THROW(compression::codec_name_of(250), std::invalid_argument);
}

TEST(CodecArbiterTest, LevelZeroIsAlwaysLossless) {
  CodecArbiter arbiter({.policy = CodecPolicy::kFixed}, 4);
  const std::vector<double> dense = test::dense_supremacy_like(128, 1);
  EXPECT_TRUE(arbiter.decide_lossless(0, 0, dense));
}

TEST(CodecArbiterTest, FixedPolicyAlwaysPicksLossyAboveLevelZero) {
  CodecArbiter arbiter({.policy = CodecPolicy::kFixed}, 4);
  const std::vector<double> zeros(128, 0.0);  // even decisively sparse data
  EXPECT_FALSE(arbiter.decide_lossless(0, 1, zeros));
  EXPECT_EQ(arbiter.stats().lossy_choices, 1u);
}

TEST(CodecArbiterTest, AdaptiveRoutesByBlockStructure) {
  ArbiterConfig config;
  config.policy = CodecPolicy::kAdaptive;
  CodecArbiter arbiter(config, 4);
  const std::vector<double> zeros(128, 0.0);
  const std::vector<double> uniform(128, 0.1);  // dr = 0: repeated patterns
  const auto dense = test::dense_supremacy_like(128, 2);
  EXPECT_TRUE(arbiter.decide_lossless(0, 2, zeros));
  EXPECT_TRUE(arbiter.decide_lossless(1, 2, uniform));
  EXPECT_FALSE(arbiter.decide_lossless(2, 2, dense));
  const auto stats = arbiter.stats();
  EXPECT_EQ(stats.lossless_choices, 2u);
  EXPECT_EQ(stats.lossy_choices, 1u);
}

TEST(CodecArbiterTest, HysteresisStopsThrashingAtTheBoundary) {
  ArbiterConfig config;
  config.policy = CodecPolicy::kAdaptive;
  config.zero_fraction_threshold = 0.5;
  config.dynamic_range_threshold = 0.0;
  config.hysteresis = 0.1;
  CodecArbiter arbiter(config, 1);

  // Alternate just above/below the raw threshold, inside the +-0.1 band.
  // 66 nonzero of 128 (zf = 0.484) vs 62 nonzero (zf = 0.516): without
  // hysteresis the block would flip codec every pass.
  auto with_nonzeros = [](int nonzeros) {
    std::vector<double> data(128, 0.0);
    for (int i = 0; i < nonzeros; ++i) data[i] = 1.0 + i;  // wide range
    return data;
  };
  const bool first = arbiter.decide_lossless(0, 1, with_nonzeros(66));
  for (int pass = 0; pass < 6; ++pass) {
    EXPECT_EQ(arbiter.decide_lossless(0, 1, with_nonzeros(pass % 2 ? 62 : 66)),
              first);
  }
  EXPECT_EQ(arbiter.stats().switches, 0u);

  // A decisive move outside the band does flip, once.
  EXPECT_TRUE(arbiter.decide_lossless(0, 1, with_nonzeros(8)));
  EXPECT_EQ(arbiter.stats().switches, first ? 0u : 1u);
}

TEST(CodecArbiterTest, SeedPrimesHysteresisWithoutCountingAChoice) {
  ArbiterConfig config;
  config.policy = CodecPolicy::kAdaptive;
  config.zero_fraction_threshold = 0.5;
  config.dynamic_range_threshold = 0.0;
  config.hysteresis = 0.1;
  CodecArbiter arbiter(config, 2);
  arbiter.seed(0, false);  // block 0 resumed from a lossy payload
  EXPECT_EQ(arbiter.stats().lossless_choices + arbiter.stats().lossy_choices,
            0u);

  // zf = 0.531 clears the raw threshold but not the seeded lossy block's
  // raised one (0.6) — hysteresis carried over the resume.
  std::vector<double> data(128, 0.0);
  for (int i = 0; i < 60; ++i) data[i] = 1.0 + i;
  EXPECT_FALSE(arbiter.decide_lossless(0, 1, data));
  EXPECT_TRUE(arbiter.decide_lossless(1, 1, data));  // unseeded: raw threshold
}

// --- Simulator-level behavior -------------------------------------------

SimConfig adaptive_config(int qubits, int ranks = 2, int blocks = 4) {
  SimConfig config;
  config.num_qubits = qubits;
  config.num_ranks = ranks;
  config.blocks_per_rank = blocks;
  config.codec_policy = "adaptive";
  return config;
}

TEST(AdaptiveSimulatorTest, SparseCircuitStaysExactAtALossyLevel) {
  // A GHZ ladder's states are always sparse with uniform magnitudes: the
  // arbiter routes all passes lossless, so even at a lossy level the state
  // is exact and no fidelity is charged.
  qsim::Circuit circuit(8);
  circuit.h(0);
  for (int q = 1; q < 8; ++q) circuit.cx(q - 1, q);
  SimConfig config = adaptive_config(circuit.num_qubits());
  config.initial_level = 2;
  CompressedStateSimulator adaptive(config);
  adaptive.apply_circuit(circuit);

  SimConfig lossless_config = adaptive_config(circuit.num_qubits());
  lossless_config.codec_policy = "fixed";
  CompressedStateSimulator reference(lossless_config);  // level 0: exact
  reference.apply_circuit(circuit);

  const auto report = adaptive.report();
  EXPECT_EQ(report.codec_lossy_choices, 0u);
  EXPECT_EQ(report.lossy_passes, 0u);
  EXPECT_DOUBLE_EQ(report.fidelity_bound, 1.0);
  CQS_EXPECT_STATES_CLOSE(adaptive.to_raw(), reference.to_raw(), 0.0);
}

TEST(AdaptiveSimulatorTest, DenseCircuitUsesTheLossyCodecWithinBound) {
  const auto circuit =
      circuits::supremacy_circuit({.rows = 2, .cols = 5, .depth = 8});
  SimConfig config = adaptive_config(10);
  config.initial_level = 1;
  CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  const auto report = sim.report();
  EXPECT_GT(report.codec_lossy_choices, 0u);
  EXPECT_GT(report.lossy_passes, 0u);

  CompressedStateSimulator reference(adaptive_config(10));
  reference.apply_circuit(circuit);
  EXPECT_GE(qsim::state_fidelity(sim.to_raw(), reference.to_raw()),
            report.fidelity_bound - 1e-12);
}

TEST(AdaptiveSimulatorTest, MixedBlockCodecsCoexistAndCensusAddsUp) {
  // Grover at 2 ranks x 2 blocks over 8 qubits: the occupied block is
  // dense-with-noise (lossy) while the ancilla blocks stay lossless.
  const auto circuit = circuits::grover_circuit(
      {.data_qubits = 5, .marked_state = 0b01011, .iterations = 2});
  SimConfig config = adaptive_config(circuit.num_qubits(), 2, 2);
  config.initial_level = 1;
  CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  const auto report = sim.report();
  EXPECT_EQ(report.final_lossless_blocks + report.final_lossy_blocks, 4u);
  EXPECT_EQ(report.final_lossless_bytes + report.final_lossy_bytes,
            sim.compressed_bytes());
  EXPECT_EQ(report.codec_policy, "adaptive");
  EXPECT_GT(report.codec_lossless_choices, 0u);
}

TEST(AdaptiveSimulatorTest, CacheHitsPreserveBlockCodecIdentity) {
  // The same circuit with and without the block cache must produce
  // identical states AND identical final codec assignments: a cache hit
  // restores the block's codec from the cached line, not from the level.
  const auto circuit = circuits::grover_circuit(
      {.data_qubits = 5, .marked_state = 0b00111, .iterations = 2});
  std::vector<double> reference;
  std::uint64_t reference_lossless = 0;
  for (bool cache : {false, true}) {
    SimConfig config = adaptive_config(circuit.num_qubits());
    config.initial_level = 1;
    config.enable_cache = cache;
    CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    const auto report = sim.report();
    if (!cache) {
      reference = sim.to_raw();
      reference_lossless = report.final_lossless_blocks;
    } else {
      CQS_EXPECT_STATES_CLOSE(sim.to_raw(), reference, 0.0);
      EXPECT_EQ(report.final_lossless_blocks, reference_lossless);
    }
  }
}

TEST(AdaptiveSimulatorTest, FixedPolicyReportsNoLosslessChoicesAboveLevel0) {
  const auto circuit =
      circuits::supremacy_circuit({.rows = 2, .cols = 4, .depth = 6});
  SimConfig config = adaptive_config(8);
  config.codec_policy = "fixed";
  config.initial_level = 1;
  CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  const auto report = sim.report();
  // Init happens at level 1 too, so every choice the arbiter logged for a
  // fixed-policy lossy run is a lossy one.
  EXPECT_EQ(report.codec_lossless_choices, 0u);
  EXPECT_GT(report.codec_lossy_choices, 0u);
  EXPECT_EQ(report.final_lossless_blocks, 0u);
}

}  // namespace
}  // namespace cqs
