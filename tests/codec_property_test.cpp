// Property tests shared by every lossy codec in the repository, swept over
// (codec, error bound) with parameterized gtest:
//   - decompression respects the requested pointwise relative bound,
//   - magnitudes never grow for truncation-based codecs,
//   - round trips preserve element counts and exact zeros,
//   - compressed data is a self-describing container.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "circuits/datasets.hpp"
#include "common/rng.hpp"
#include "compression/compressor.hpp"
#include "compression/verify.hpp"
#include "test_util.hpp"

namespace cqs::compression {
namespace {

std::vector<double> random_amplitude_like(std::size_t n, std::uint64_t seed) {
  // Spiky, wide-dynamic-range values mimicking Figure 9.
  return test::spiky_qaoa_like(n, seed);
}

using Param = std::tuple<std::string, double>;

class LossyBoundTest : public ::testing::TestWithParam<Param> {};

TEST_P(LossyBoundTest, RespectsPointwiseRelativeBound) {
  const auto& [name, bound] = GetParam();
  const auto codec = make_compressor(name);
  ASSERT_TRUE(codec->supports(BoundMode::kPointwiseRelative));

  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto data = random_amplitude_like(4096, seed);
    const Bytes compressed =
        codec->compress(data, ErrorBound::relative(bound));
    ASSERT_EQ(codec->element_count(compressed), data.size());
    std::vector<double> out(data.size());
    codec->decompress(compressed, out);
    const ErrorReport report = measure_error(data, out);
    EXPECT_LE(report.max_pointwise_relative, bound * (1.0 + 1e-12))
        << name << " bound " << bound << " seed " << seed;
  }
}

TEST_P(LossyBoundTest, PreservesExactZeros) {
  const auto& [name, bound] = GetParam();
  const auto codec = make_compressor(name);
  std::vector<double> data(1024, 0.0);
  data[100] = 0.5;
  data[500] = -0.25;
  const Bytes compressed = codec->compress(data, ErrorBound::relative(bound));
  std::vector<double> out(data.size());
  codec->decompress(compressed, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] == 0.0) {
      EXPECT_EQ(out[i], 0.0) << name << " index " << i;
    }
  }
}

TEST_P(LossyBoundTest, QuantumStateDataRespectsBound) {
  const auto& [name, bound] = GetParam();
  const auto codec = make_compressor(name);
  const auto data = circuits::qaoa_dataset(10);
  const Bytes compressed = codec->compress(data, ErrorBound::relative(bound));
  std::vector<double> out(data.size());
  codec->decompress(compressed, out);
  const ErrorReport report = measure_error(data, out);
  EXPECT_LE(report.max_pointwise_relative, bound * (1.0 + 1e-12));
}

TEST_P(LossyBoundTest, TighterBoundNoWorseFidelityOfReconstruction) {
  const auto& [name, bound] = GetParam();
  if (bound > 1e-2) GTEST_SKIP() << "only meaningful for tight bounds";
  const auto codec = make_compressor(name);
  const auto data = random_amplitude_like(2048, 77);
  const Bytes loose = codec->compress(data, ErrorBound::relative(1e-1));
  const Bytes tight = codec->compress(data, ErrorBound::relative(bound));
  const auto out_loose = codec->decompress_to_vector(loose);
  const auto out_tight = codec->decompress_to_vector(tight);
  EXPECT_LE(measure_error(data, out_tight).max_pointwise_relative,
            measure_error(data, out_loose).max_pointwise_relative +
                1e-15);
}

const double kBounds[] = {1e-1, 1e-2, 1e-3, 1e-4, 1e-5};

std::vector<Param> all_params() {
  std::vector<Param> params;
  for (const auto& name :
       {"sz", "sz-complex", "qzc", "qzc-shuffle", "zfp", "fpzip",
        "zfp-rans"}) {
    for (double b : kBounds) params.emplace_back(name, b);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllBounds, LossyBoundTest, ::testing::ValuesIn(all_params()),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      const int exponent = static_cast<int>(
          std::round(-std::log10(std::get<1>(info.param))));
      return name + "_1em" + std::to_string(exponent);
    });

// ---------------------------------------------------------------------------
// Registry-wide randomized round-trip property suite: every registered codec
// is swept over every bound mode it supports ({lossless, absolute,
// pointwise-relative}) on three data regimes (spiky QAOA-like, dense
// supremacy-like, sparse early-simulation), with several seeds per
// combination. The suite asserts the reconstruction respects the requested
// bound semantics exactly.
// ---------------------------------------------------------------------------

struct RoundTripParam {
  std::string codec;
  BoundMode mode;
  double value;  // ignored for kLossless
  std::string label;
};

class RoundTripPropertyTest
    : public ::testing::TestWithParam<RoundTripParam> {};

void check_bound(const std::string& codec_name, const ErrorBound& bound,
                 std::span<const double> data,
                 std::span<const double> out) {
  switch (bound.mode) {
    case BoundMode::kLossless:
      for (std::size_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(out[i], data[i]) << codec_name << " index " << i;
      }
      break;
    case BoundMode::kAbsolute: {
      const ErrorReport report = measure_error(data, out);
      EXPECT_LE(report.max_absolute, bound.value * (1.0 + 1e-12))
          << codec_name << " abs bound " << bound.value;
      break;
    }
    case BoundMode::kPointwiseRelative: {
      const ErrorReport report = measure_error(data, out);
      EXPECT_LE(report.max_pointwise_relative, bound.value * (1.0 + 1e-12))
          << codec_name << " rel bound " << bound.value;
      // Pointwise relative bounds must preserve exact zeros.
      for (std::size_t i = 0; i < data.size(); ++i) {
        if (data[i] == 0.0) {
          ASSERT_EQ(out[i], 0.0) << codec_name << " zero at " << i;
        }
      }
      break;
    }
  }
}

TEST_P(RoundTripPropertyTest, BoundHoldsOnSpikyAndDenseData) {
  const auto& param = GetParam();
  const auto codec = make_compressor(param.codec);
  ASSERT_TRUE(codec->supports(param.mode));
  const ErrorBound bound{param.mode, param.value};

  for (std::uint64_t seed : {11u, 22u, 33u}) {
    for (int regime = 0; regime < 3; ++regime) {
      const std::vector<double> data =
          regime == 0   ? test::spiky_qaoa_like(4096, seed)
          : regime == 1 ? test::dense_supremacy_like(4096, seed)
                        : test::sparse_like(4096, seed);
      const Bytes compressed = codec->compress(data, bound);
      ASSERT_EQ(codec->element_count(compressed), data.size());
      std::vector<double> out(data.size());
      codec->decompress(compressed, out);
      SCOPED_TRACE(::testing::Message()
                   << param.codec << " seed " << seed << " regime "
                   << regime);
      check_bound(param.codec, bound, data, out);
    }
  }
}

std::vector<RoundTripParam> round_trip_params() {
  std::vector<RoundTripParam> params;
  for (const auto& name : compressor_names()) {
    const auto codec = make_compressor(name);
    std::string safe = name;
    for (auto& ch : safe) {
      if (ch == '-') ch = '_';
    }
    if (codec->supports(BoundMode::kLossless)) {
      params.push_back({name, BoundMode::kLossless, 0.0, safe + "_lossless"});
    }
    for (double value : {1e-2, 1e-4, 1e-6}) {
      const int exponent =
          static_cast<int>(std::round(-std::log10(value)));
      if (codec->supports(BoundMode::kAbsolute)) {
        params.push_back({name, BoundMode::kAbsolute, value,
                          safe + "_abs_1em" + std::to_string(exponent)});
      }
      if (codec->supports(BoundMode::kPointwiseRelative)) {
        params.push_back({name, BoundMode::kPointwiseRelative, value,
                          safe + "_rel_1em" + std::to_string(exponent)});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    RegistrySweep, RoundTripPropertyTest,
    ::testing::ValuesIn(round_trip_params()),
    [](const ::testing::TestParamInfo<RoundTripParam>& info) {
      return info.param.label;
    });

TEST(CompressorRegistryTest, AllNamesConstruct) {
  for (const auto& name : compressor_names()) {
    const auto codec = make_compressor(name);
    EXPECT_EQ(codec->name(), name);
  }
  EXPECT_THROW(make_compressor("nope"), std::invalid_argument);
}

TEST(CompressorRegistryTest, LosslessCodecIsExact) {
  const auto codec = make_compressor("zstd");
  const auto data = random_amplitude_like(4096, 9);
  const Bytes compressed = codec->compress(data, ErrorBound::lossless());
  std::vector<double> out(data.size());
  codec->decompress(compressed, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(out[i], data[i]);
  }
}

TEST(CompressorRegistryTest, EmptyInputRoundTrips) {
  for (const auto& name : compressor_names()) {
    const auto codec = make_compressor(name);
    const ErrorBound bound = codec->supports(BoundMode::kPointwiseRelative)
                                 ? ErrorBound::relative(1e-3)
                                 : ErrorBound::lossless();
    const Bytes compressed = codec->compress({}, bound);
    EXPECT_EQ(codec->element_count(compressed), 0u) << name;
    std::vector<double> out;
    codec->decompress(compressed, out);  // must not throw
  }
}

}  // namespace
}  // namespace cqs::compression
