// Property tests shared by every lossy codec in the repository, swept over
// (codec, error bound) with parameterized gtest:
//   - decompression respects the requested pointwise relative bound,
//   - magnitudes never grow for truncation-based codecs,
//   - round trips preserve element counts and exact zeros,
//   - compressed data is a self-describing container.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "circuits/datasets.hpp"
#include "common/rng.hpp"
#include "compression/compressor.hpp"
#include "compression/verify.hpp"

namespace cqs::compression {
namespace {

std::vector<double> random_amplitude_like(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data(n);
  for (auto& d : data) {
    // Spiky, wide-dynamic-range values mimicking Figure 9.
    const double mag = std::exp2(-20.0 * rng.next_double());
    d = (rng.next_bool() ? mag : -mag) * rng.next_double();
  }
  return data;
}

using Param = std::tuple<std::string, double>;

class LossyBoundTest : public ::testing::TestWithParam<Param> {};

TEST_P(LossyBoundTest, RespectsPointwiseRelativeBound) {
  const auto& [name, bound] = GetParam();
  const auto codec = make_compressor(name);
  ASSERT_TRUE(codec->supports(BoundMode::kPointwiseRelative));

  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto data = random_amplitude_like(4096, seed);
    const Bytes compressed =
        codec->compress(data, ErrorBound::relative(bound));
    ASSERT_EQ(codec->element_count(compressed), data.size());
    std::vector<double> out(data.size());
    codec->decompress(compressed, out);
    const ErrorReport report = measure_error(data, out);
    EXPECT_LE(report.max_pointwise_relative, bound * (1.0 + 1e-12))
        << name << " bound " << bound << " seed " << seed;
  }
}

TEST_P(LossyBoundTest, PreservesExactZeros) {
  const auto& [name, bound] = GetParam();
  const auto codec = make_compressor(name);
  std::vector<double> data(1024, 0.0);
  data[100] = 0.5;
  data[500] = -0.25;
  const Bytes compressed = codec->compress(data, ErrorBound::relative(bound));
  std::vector<double> out(data.size());
  codec->decompress(compressed, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] == 0.0) {
      EXPECT_EQ(out[i], 0.0) << name << " index " << i;
    }
  }
}

TEST_P(LossyBoundTest, QuantumStateDataRespectsBound) {
  const auto& [name, bound] = GetParam();
  const auto codec = make_compressor(name);
  const auto data = circuits::qaoa_dataset(10);
  const Bytes compressed = codec->compress(data, ErrorBound::relative(bound));
  std::vector<double> out(data.size());
  codec->decompress(compressed, out);
  const ErrorReport report = measure_error(data, out);
  EXPECT_LE(report.max_pointwise_relative, bound * (1.0 + 1e-12));
}

TEST_P(LossyBoundTest, TighterBoundNoWorseFidelityOfReconstruction) {
  const auto& [name, bound] = GetParam();
  if (bound > 1e-2) GTEST_SKIP() << "only meaningful for tight bounds";
  const auto codec = make_compressor(name);
  const auto data = random_amplitude_like(2048, 77);
  const Bytes loose = codec->compress(data, ErrorBound::relative(1e-1));
  const Bytes tight = codec->compress(data, ErrorBound::relative(bound));
  const auto out_loose = codec->decompress_to_vector(loose);
  const auto out_tight = codec->decompress_to_vector(tight);
  EXPECT_LE(measure_error(data, out_tight).max_pointwise_relative,
            measure_error(data, out_loose).max_pointwise_relative +
                1e-15);
}

const double kBounds[] = {1e-1, 1e-2, 1e-3, 1e-4, 1e-5};

std::vector<Param> all_params() {
  std::vector<Param> params;
  for (const auto& name :
       {"sz", "sz-complex", "qzc", "qzc-shuffle", "zfp", "fpzip"}) {
    for (double b : kBounds) params.emplace_back(name, b);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllBounds, LossyBoundTest, ::testing::ValuesIn(all_params()),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      const int exponent = static_cast<int>(
          std::round(-std::log10(std::get<1>(info.param))));
      return name + "_1em" + std::to_string(exponent);
    });

TEST(CompressorRegistryTest, AllNamesConstruct) {
  for (const auto& name : compressor_names()) {
    const auto codec = make_compressor(name);
    EXPECT_EQ(codec->name(), name);
  }
  EXPECT_THROW(make_compressor("nope"), std::invalid_argument);
}

TEST(CompressorRegistryTest, LosslessCodecIsExact) {
  const auto codec = make_compressor("zstd");
  const auto data = random_amplitude_like(4096, 9);
  const Bytes compressed = codec->compress(data, ErrorBound::lossless());
  std::vector<double> out(data.size());
  codec->decompress(compressed, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(out[i], data[i]);
  }
}

TEST(CompressorRegistryTest, EmptyInputRoundTrips) {
  for (const auto& name : compressor_names()) {
    const auto codec = make_compressor(name);
    const ErrorBound bound = codec->supports(BoundMode::kPointwiseRelative)
                                 ? ErrorBound::relative(1e-3)
                                 : ErrorBound::lossless();
    const Bytes compressed = codec->compress({}, bound);
    EXPECT_EQ(codec->element_count(compressed), 0u) << name;
    std::vector<double> out;
    codec->decompress(compressed, out);  // must not throw
  }
}

}  // namespace
}  // namespace cqs::compression
