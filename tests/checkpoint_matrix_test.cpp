// Checkpoint cross-version matrix: files written in formats v1, v2, and
// the current v3 must all resume into a correct simulation. v3
// additionally round-trips per-block codec ids (mixed adaptive codecs)
// and the accumulated lossy-pass count.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "circuits/grover.hpp"
#include "circuits/qft.hpp"
#include "common/bytes.hpp"
#include "compression/compressor.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"
#include "runtime/checkpoint.hpp"
#include "test_util.hpp"

namespace cqs {
namespace {

using core::CompressedStateSimulator;
using core::SimConfig;

SimConfig matrix_config(int qubits, const std::string& policy = "fixed") {
  SimConfig config;
  config.num_qubits = qubits;
  config.num_ranks = 2;
  config.blocks_per_rank = 2;
  config.codec_policy = policy;
  return config;
}

/// Partition under which an adaptive lossy Grover-10 run is known to leave
/// a mixed store: the block holding the data subspace is dense-with-noise
/// (lossy) while the ancilla blocks stay lossless.
SimConfig mixed_config(int qubits) {
  SimConfig config;
  config.num_qubits = qubits;
  config.num_ranks = 2;
  config.blocks_per_rank = 4;
  config.codec_policy = "adaptive";
  config.initial_level = 1;
  return config;
}

/// Writes a legacy (v1 or v2) checkpoint holding a REAL simulator state:
/// `raw` chopped into 2 ranks x 2 blocks, each block zx-compressed at
/// level 0 — exactly what the old writers produced for a lossless run
/// whose `gates_done` gates of a circuit had been applied.
void write_legacy_checkpoint(const std::string& path, int version,
                             const std::vector<double>& raw, int num_qubits,
                             std::uint64_t gates_done,
                             std::uint64_t lossy_passes) {
  Bytes buffer;
  const char magic[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T',
                         static_cast<char>('0' + version)};
  buffer.insert(buffer.end(), reinterpret_cast<const std::byte*>(magic),
                reinterpret_cast<const std::byte*>(magic) + 8);
  put_varint(buffer, static_cast<std::uint64_t>(num_qubits));
  put_varint(buffer, 2);  // num_ranks
  put_varint(buffer, 2);  // blocks_per_rank
  put_varint(buffer, 0);  // ladder_level: lossless
  put_varint(buffer, gates_done);
  put_scalar(buffer, 1.0);  // fidelity bound
  if (version >= 2) put_varint(buffer, lossy_passes);
  const std::string codec_name = "qzc";
  put_varint(buffer, codec_name.size());
  for (char ch : codec_name) buffer.push_back(static_cast<std::byte>(ch));

  const auto codec = compression::make_compressor("zstd");
  const std::size_t doubles_per_block = raw.size() / 4;
  put_varint(buffer, 2);  // rank count
  for (int r = 0; r < 2; ++r) {
    put_varint(buffer, 2);  // blocks in rank
    for (int b = 0; b < 2; ++b) {
      const std::size_t base = (r * 2 + b) * doubles_per_block;
      const Bytes payload = codec->compress(
          std::span<const double>(raw.data() + base, doubles_per_block),
          compression::ErrorBound::lossless());
      buffer.push_back(std::byte{0});  // meta level (no codec byte pre-v3)
      put_varint(buffer, payload.size());
      buffer.insert(buffer.end(), payload.begin(), payload.end());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
}

using CheckpointMatrixTest = test::TempDirFixture;

TEST_F(CheckpointMatrixTest, V1AndV2FilesResumeCorrectly) {
  const auto circuit =
      circuits::qft_circuit({.num_qubits = 8, .random_input = false});

  // Uninterrupted reference run.
  CompressedStateSimulator full(matrix_config(8));
  full.apply_circuit(circuit);
  const auto reference = full.to_raw();

  // The state after the first half, from a real (lossless) run.
  const std::uint64_t half = circuit.size() / 2;
  CompressedStateSimulator first(matrix_config(8));
  qsim::Circuit head(8);
  for (std::uint64_t i = 0; i < half; ++i) {
    head.append(circuit.ops()[i]);
  }
  first.apply_circuit(head);
  const auto half_state = first.to_raw();

  for (int version : {1, 2}) {
    const std::string path =
        this->path("legacy_v" + std::to_string(version) + ".bin");
    write_legacy_checkpoint(path, version, half_state, 8, half,
                            /*lossy_passes=*/0);
    auto resumed =
        CompressedStateSimulator::load_checkpoint(path, matrix_config(8));
    EXPECT_EQ(resumed.gate_cursor(), half) << "v" << version;
    resumed.resume_circuit(circuit);
    EXPECT_NEAR(qsim::state_fidelity(resumed.to_raw(), reference), 1.0,
                1e-10)
        << "v" << version;
    CQS_EXPECT_STATES_CLOSE(resumed.to_raw(), reference, 1e-12);
  }
}

TEST_F(CheckpointMatrixTest, V2PassCountSurvivesWhereV1Reconstructs) {
  const std::vector<double> raw(1 << 9, 0.0);  // 8 qubits of zeros

  const std::string v2 = this->path("passes_v2.bin");
  write_legacy_checkpoint(v2, 2, raw, 8, 0, /*lossy_passes=*/17);
  EXPECT_EQ(runtime::load_checkpoint(v2).first.lossy_passes, 17u);

  // v1 has no pass field: a bound of 1.0 reconstructs zero passes.
  const std::string v1 = this->path("passes_v1.bin");
  write_legacy_checkpoint(v1, 1, raw, 8, 0, /*lossy_passes=*/99);
  EXPECT_EQ(runtime::load_checkpoint(v1).first.lossy_passes, 0u);
}

TEST_F(CheckpointMatrixTest, V3RoundTripsMixedPerBlockCodecsAndPasses) {
  // An adaptive lossy Grover run leaves a genuinely mixed store: the
  // occupied block goes through qzc while the ancilla blocks stay on the
  // lossless path. Save (v3) must persist each block's codec id and the
  // pass count; load must resume both exactly.
  const auto circuit = circuits::grover_circuit(
      {.data_qubits = 6, .marked_state = 0b101101, .iterations = 2});
  SimConfig config = mixed_config(circuit.num_qubits());
  CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  const auto report = sim.report();
  ASSERT_GT(report.final_lossless_blocks, 0u);
  ASSERT_GT(report.final_lossy_blocks, 0u) << "state not mixed; the "
      "fixture circuit no longer exercises mixed codecs";

  const std::string path = this->path("mixed_v3.bin");
  sim.save_checkpoint(path);

  // Raw reload: per-block codec ids survive byte-for-byte.
  const auto [header, stores] = runtime::load_checkpoint(path);
  EXPECT_EQ(header.lossy_passes, report.lossy_passes);
  std::uint64_t lossless_blocks = 0;
  std::uint64_t lossy_blocks = 0;
  for (const auto& store : stores) {
    for (int b = 0; b < store.num_blocks(); ++b) {
      if (store.meta(b).codec == compression::kLosslessCodecId) {
        ++lossless_blocks;
      } else {
        EXPECT_EQ(store.meta(b).codec, compression::codec_id("qzc"));
        ++lossy_blocks;
      }
    }
  }
  EXPECT_EQ(lossless_blocks, report.final_lossless_blocks);
  EXPECT_EQ(lossy_blocks, report.final_lossy_blocks);

  // Simulator reload: the mixed store decompresses per-block and the
  // fidelity ledger continues from the saved passes, not from scratch.
  auto resumed = CompressedStateSimulator::load_checkpoint(
      path, mixed_config(circuit.num_qubits()));
  CQS_EXPECT_STATES_CLOSE(resumed.to_raw(), sim.to_raw(), 0.0);
  const auto resumed_report = resumed.report();
  EXPECT_EQ(resumed_report.lossy_passes, report.lossy_passes);
  EXPECT_DOUBLE_EQ(resumed_report.fidelity_bound, report.fidelity_bound);
  EXPECT_EQ(resumed_report.final_lossless_blocks,
            report.final_lossless_blocks);
}

TEST_F(CheckpointMatrixTest, SplitAdaptiveRunMatchesUninterruptedRun) {
  // Save mid-circuit under the adaptive policy, resume, and compare with
  // the uninterrupted run: cursor, codec mix, and state must all agree
  // bit-exactly (same codec decisions on both paths — the arbiter's
  // hysteresis is restored from the per-block codec ids).
  const auto circuit = circuits::grover_circuit(
      {.data_qubits = 6, .marked_state = 0b110011, .iterations = 2});
  SimConfig config = mixed_config(circuit.num_qubits());
  // Per-gate mode: batched runs may not span the save point, so the
  // batched split run would legitimately recompress at different points
  // than the uninterrupted one; gate-by-gate the two are bit-comparable.
  config.enable_run_batching = false;

  CompressedStateSimulator full{config};
  full.apply_circuit(circuit);

  CompressedStateSimulator first{config};
  qsim::Circuit head(circuit.num_qubits());
  const std::uint64_t half = circuit.size() / 2;
  for (std::uint64_t i = 0; i < half; ++i) {
    head.append(circuit.ops()[i]);
  }
  first.apply_circuit(head);
  const std::string path = this->path("split_adaptive.bin");
  first.save_checkpoint(path);

  auto resumed = CompressedStateSimulator::load_checkpoint(path, config);
  EXPECT_EQ(resumed.gate_cursor(), half);
  resumed.resume_circuit(circuit);
  CQS_EXPECT_STATES_CLOSE(resumed.to_raw(), full.to_raw(), 0.0);
  EXPECT_EQ(resumed.report().final_lossy_blocks,
            full.report().final_lossy_blocks);
}

TEST_F(CheckpointMatrixTest, V3RejectsForeignCodecIdAtLoad) {
  // A v3 block claiming a codec the resume config doesn't hold must fail
  // loudly at load (decompression runs on worker threads, which cannot
  // surface the error), not silently misdecode.
  const auto circuit = circuits::grover_circuit(
      {.data_qubits = 6, .marked_state = 0b001101, .iterations = 2});
  CompressedStateSimulator sim(mixed_config(circuit.num_qubits()));
  sim.apply_circuit(circuit);
  ASSERT_GT(sim.report().final_lossy_blocks, 0u);
  const std::string path = this->path("foreign.bin");
  sim.save_checkpoint(path);

  // Pretend the file came from an sz run: the qzc-compressed payloads
  // keep their codec id 'qzc', which an sz simulator cannot decode.
  auto [header, stores] = runtime::load_checkpoint(path);
  header.codec_name = "sz";
  const std::string rewritten = this->path("foreign_sz.bin");
  runtime::save_checkpoint(rewritten, header, stores);

  EXPECT_THROW(CompressedStateSimulator::load_checkpoint(
                   rewritten, mixed_config(circuit.num_qubits())),
               std::invalid_argument);
}

}  // namespace
}  // namespace cqs
