// Checkpoint cross-version matrix: files written in formats v1, v2, and
// the current v3 must all resume into a correct simulation. v3
// additionally round-trips per-block codec ids (mixed adaptive codecs)
// and the accumulated lossy-pass count.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "circuits/grover.hpp"
#include "circuits/qft.hpp"
#include "common/bytes.hpp"
#include "compression/compressor.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"
#include "runtime/checkpoint.hpp"
#include "test_util.hpp"

namespace cqs {
namespace {

using core::CompressedStateSimulator;
using core::SimConfig;

SimConfig matrix_config(int qubits, const std::string& policy = "fixed") {
  SimConfig config;
  config.num_qubits = qubits;
  config.num_ranks = 2;
  config.blocks_per_rank = 2;
  config.codec_policy = policy;
  return config;
}

/// Partition under which an adaptive lossy Grover-10 run is known to leave
/// a mixed store: the block holding the data subspace is dense-with-noise
/// (lossy) while the ancilla blocks stay lossless.
SimConfig mixed_config(int qubits) {
  SimConfig config;
  config.num_qubits = qubits;
  config.num_ranks = 2;
  config.blocks_per_rank = 4;
  config.codec_policy = "adaptive";
  config.initial_level = 1;
  return config;
}

/// Writes a legacy (v1, v2, or v3) checkpoint holding a REAL simulator
/// state: `raw` chopped into 2 ranks x 2 blocks, each block zx-compressed
/// at level 0 — exactly what the old writers produced for a lossless run
/// whose `gates_done` gates of a circuit had been applied. v3 adds the
/// per-block codec byte; none of them carry a qubit map. For corruption
/// tests, `qubit_map_override` injects an arbitrary map table into a v4
/// file (empty = omit the map section entirely, i.e. stay legacy).
void write_legacy_checkpoint(const std::string& path, int version,
                             const std::vector<double>& raw, int num_qubits,
                             std::uint64_t gates_done,
                             std::uint64_t lossy_passes,
                             const std::vector<int>& qubit_map_override = {},
                             std::uint8_t block_codec_id = 0) {
  Bytes buffer;
  const char magic[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T',
                         static_cast<char>('0' + version)};
  buffer.insert(buffer.end(), reinterpret_cast<const std::byte*>(magic),
                reinterpret_cast<const std::byte*>(magic) + 8);
  put_varint(buffer, static_cast<std::uint64_t>(num_qubits));
  put_varint(buffer, 2);  // num_ranks
  put_varint(buffer, 2);  // blocks_per_rank
  put_varint(buffer, 0);  // ladder_level: lossless
  put_varint(buffer, gates_done);
  put_scalar(buffer, 1.0);  // fidelity bound
  if (version >= 2) put_varint(buffer, lossy_passes);
  const std::string codec_name = "qzc";
  put_varint(buffer, codec_name.size());
  for (char ch : codec_name) buffer.push_back(static_cast<std::byte>(ch));
  if (version >= 4) {
    put_varint(buffer, qubit_map_override.size());
    for (int p : qubit_map_override) {
      put_varint(buffer, static_cast<std::uint64_t>(p));
    }
  }

  const auto codec = compression::make_compressor("zstd");
  const std::size_t doubles_per_block = raw.size() / 4;
  put_varint(buffer, 2);  // rank count
  for (int r = 0; r < 2; ++r) {
    put_varint(buffer, 2);  // blocks in rank
    for (int b = 0; b < 2; ++b) {
      const std::size_t base = (r * 2 + b) * doubles_per_block;
      const Bytes payload = codec->compress(
          std::span<const double>(raw.data() + base, doubles_per_block),
          compression::ErrorBound::lossless());
      buffer.push_back(std::byte{0});  // meta level (no codec byte pre-v3)
      if (version >= 3) {
        buffer.push_back(static_cast<std::byte>(block_codec_id));
      }
      if (version >= 5) {
        buffer.push_back(std::byte{0});  // tier: resident
      }
      put_varint(buffer, payload.size());
      buffer.insert(buffer.end(), payload.begin(), payload.end());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
}

using CheckpointMatrixTest = test::TempDirFixture;

TEST_F(CheckpointMatrixTest, LegacyV1V2V3FilesResumeWithIdentityMaps) {
  const auto circuit =
      circuits::qft_circuit({.num_qubits = 8, .random_input = false});

  // Uninterrupted reference run.
  CompressedStateSimulator full(matrix_config(8));
  full.apply_circuit(circuit);
  const auto reference = full.to_raw();

  // The state after the first half, from a real (lossless) run.
  const std::uint64_t half = circuit.size() / 2;
  CompressedStateSimulator first(matrix_config(8));
  qsim::Circuit head(8);
  for (std::uint64_t i = 0; i < half; ++i) {
    head.append(circuit.ops()[i]);
  }
  first.apply_circuit(head);
  const auto half_state = first.to_raw();

  for (int version : {1, 2, 3}) {
    const std::string path =
        this->path("legacy_v" + std::to_string(version) + ".bin");
    write_legacy_checkpoint(path, version, half_state, 8, half,
                            /*lossy_passes=*/0);
    // Pre-v4 files carry no qubit map: the loader must derive identity.
    EXPECT_TRUE(runtime::load_checkpoint(path).first.qubit_map.empty())
        << "v" << version;
    auto resumed =
        CompressedStateSimulator::load_checkpoint(path, matrix_config(8));
    EXPECT_TRUE(resumed.qubit_map().is_identity()) << "v" << version;
    EXPECT_EQ(resumed.gate_cursor(), half) << "v" << version;
    resumed.resume_circuit(circuit);
    EXPECT_NEAR(qsim::state_fidelity(resumed.to_raw(), reference), 1.0,
                1e-10)
        << "v" << version;
    CQS_EXPECT_STATES_CLOSE(resumed.to_raw(), reference, 1e-12);
  }
}

TEST_F(CheckpointMatrixTest, V2PassCountSurvivesWhereV1Reconstructs) {
  const std::vector<double> raw(1 << 9, 0.0);  // 8 qubits of zeros

  const std::string v2 = this->path("passes_v2.bin");
  write_legacy_checkpoint(v2, 2, raw, 8, 0, /*lossy_passes=*/17);
  EXPECT_EQ(runtime::load_checkpoint(v2).first.lossy_passes, 17u);

  // v1 has no pass field: a bound of 1.0 reconstructs zero passes.
  const std::string v1 = this->path("passes_v1.bin");
  write_legacy_checkpoint(v1, 1, raw, 8, 0, /*lossy_passes=*/99);
  EXPECT_EQ(runtime::load_checkpoint(v1).first.lossy_passes, 0u);
}

TEST_F(CheckpointMatrixTest, V3RoundTripsMixedPerBlockCodecsAndPasses) {
  // An adaptive lossy Grover run leaves a genuinely mixed store: the
  // occupied block goes through qzc while the ancilla blocks stay on the
  // lossless path. Save (v3) must persist each block's codec id and the
  // pass count; load must resume both exactly.
  const auto circuit = circuits::grover_circuit(
      {.data_qubits = 6, .marked_state = 0b101101, .iterations = 2});
  SimConfig config = mixed_config(circuit.num_qubits());
  CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  const auto report = sim.report();
  ASSERT_GT(report.final_lossless_blocks, 0u);
  ASSERT_GT(report.final_lossy_blocks, 0u) << "state not mixed; the "
      "fixture circuit no longer exercises mixed codecs";

  const std::string path = this->path("mixed_v3.bin");
  sim.save_checkpoint(path);

  // Raw reload: per-block codec ids survive byte-for-byte.
  const auto [header, stores] = runtime::load_checkpoint(path);
  EXPECT_EQ(header.lossy_passes, report.lossy_passes);
  std::uint64_t lossless_blocks = 0;
  std::uint64_t lossy_blocks = 0;
  for (const auto& store : stores) {
    for (int b = 0; b < store.num_blocks(); ++b) {
      if (store.meta(b).codec == compression::kLosslessCodecId) {
        ++lossless_blocks;
      } else {
        EXPECT_EQ(store.meta(b).codec, compression::codec_id("qzc"));
        ++lossy_blocks;
      }
    }
  }
  EXPECT_EQ(lossless_blocks, report.final_lossless_blocks);
  EXPECT_EQ(lossy_blocks, report.final_lossy_blocks);

  // Simulator reload: the mixed store decompresses per-block and the
  // fidelity ledger continues from the saved passes, not from scratch.
  auto resumed = CompressedStateSimulator::load_checkpoint(
      path, mixed_config(circuit.num_qubits()));
  CQS_EXPECT_STATES_CLOSE(resumed.to_raw(), sim.to_raw(), 0.0);
  const auto resumed_report = resumed.report();
  EXPECT_EQ(resumed_report.lossy_passes, report.lossy_passes);
  EXPECT_DOUBLE_EQ(resumed_report.fidelity_bound, report.fidelity_bound);
  EXPECT_EQ(resumed_report.final_lossless_blocks,
            report.final_lossless_blocks);
}

TEST_F(CheckpointMatrixTest, SplitAdaptiveRunMatchesUninterruptedRun) {
  // Save mid-circuit under the adaptive policy, resume, and compare with
  // the uninterrupted run: cursor, codec mix, and state must all agree
  // bit-exactly (same codec decisions on both paths — the arbiter's
  // hysteresis is restored from the per-block codec ids).
  const auto circuit = circuits::grover_circuit(
      {.data_qubits = 6, .marked_state = 0b110011, .iterations = 2});
  SimConfig config = mixed_config(circuit.num_qubits());
  // Per-gate mode: batched runs may not span the save point, so the
  // batched split run would legitimately recompress at different points
  // than the uninterrupted one; gate-by-gate the two are bit-comparable.
  config.enable_run_batching = false;

  CompressedStateSimulator full{config};
  full.apply_circuit(circuit);

  CompressedStateSimulator first{config};
  qsim::Circuit head(circuit.num_qubits());
  const std::uint64_t half = circuit.size() / 2;
  for (std::uint64_t i = 0; i < half; ++i) {
    head.append(circuit.ops()[i]);
  }
  first.apply_circuit(head);
  const std::string path = this->path("split_adaptive.bin");
  first.save_checkpoint(path);

  auto resumed = CompressedStateSimulator::load_checkpoint(path, config);
  EXPECT_EQ(resumed.gate_cursor(), half);
  resumed.resume_circuit(circuit);
  CQS_EXPECT_STATES_CLOSE(resumed.to_raw(), full.to_raw(), 0.0);
  EXPECT_EQ(resumed.report().final_lossy_blocks,
            full.report().final_lossy_blocks);
}

TEST_F(CheckpointMatrixTest, V4RoundTripsMixedQubitMap) {
  // A remapped QFT run ends with a non-identity layout (relabeled
  // reversal swaps). v4 must persist the map byte-exactly, and the
  // reloaded simulator must answer every logical-index query as if the
  // run had never been interrupted.
  const auto circuit = circuits::qft_circuit({.num_qubits = 8});
  SimConfig config = matrix_config(8);
  config.enable_qubit_remap = true;
  CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  ASSERT_FALSE(sim.qubit_map().is_identity())
      << "fixture circuit no longer leaves a remapped layout";

  const std::string path = this->path("mixed_map_v4.bin");
  sim.save_checkpoint(path);

  // Raw reload: the serialized map round-trips.
  const auto [header, stores] = runtime::load_checkpoint(path);
  EXPECT_EQ(header.qubit_map, sim.qubit_map());

  // Simulator reload: same layout, same logical state, and the restored
  // map keeps translating (a further remapped circuit still agrees with
  // an uninterrupted remap-off run).
  auto resumed = CompressedStateSimulator::load_checkpoint(path, config);
  EXPECT_EQ(resumed.qubit_map(), sim.qubit_map());
  CQS_EXPECT_STATES_CLOSE(resumed.to_raw(), sim.to_raw(), 0.0);
}

TEST_F(CheckpointMatrixTest, V4MapHonoredEvenWithRemapDisabledOnResume) {
  // Resuming a remapped checkpoint with enable_qubit_remap=false must
  // still translate gates through the persisted layout — the blocks are
  // physically permuted whether or not new remaps are allowed.
  const auto circuit = circuits::qft_circuit({.num_qubits = 8});
  SimConfig remap_config = matrix_config(8);
  remap_config.enable_qubit_remap = true;

  CompressedStateSimulator first(remap_config);
  qsim::Circuit head(8);
  const std::uint64_t half = circuit.size() / 2;
  for (std::uint64_t i = 0; i < half; ++i) head.append(circuit.ops()[i]);
  first.apply_circuit(head);
  const std::string path = this->path("map_remap_off_resume.bin");
  first.save_checkpoint(path);

  auto resumed =
      CompressedStateSimulator::load_checkpoint(path, matrix_config(8));
  resumed.resume_circuit(circuit);

  CompressedStateSimulator reference(matrix_config(8));
  reference.apply_circuit(circuit);
  CQS_EXPECT_STATES_CLOSE(resumed.to_raw(), reference.to_raw(), 0.0);
}

TEST_F(CheckpointMatrixTest, SplitRemappedRunMatchesUninterruptedRun) {
  // Save mid-circuit with remapping on, resume, and compare with the
  // uninterrupted remapped run: the final logical state must agree
  // bit-exactly. (The resumed planner only sees the remaining suffix, so
  // its layout choices may differ from the uninterrupted plan's — the
  // logical state must not.)
  const auto circuit = circuits::qft_circuit({.num_qubits = 8});
  SimConfig config = matrix_config(8);
  config.enable_qubit_remap = true;
  // Per-gate mode, as in SplitAdaptiveRunMatchesUninterruptedRun: batched
  // runs may not span the save point.
  config.enable_run_batching = false;
  config.enable_fusion_prepass = false;

  CompressedStateSimulator full{config};
  full.apply_circuit(circuit);

  for (const std::uint64_t cut : {circuit.size() / 3, circuit.size() / 2,
                                  circuit.size() - 2}) {
    CompressedStateSimulator first{config};
    qsim::Circuit head(8);
    for (std::uint64_t i = 0; i < cut; ++i) {
      head.append(circuit.ops()[i]);
    }
    first.apply_circuit(head);
    const std::string path =
        this->path("split_remap_" + std::to_string(cut) + ".bin");
    first.save_checkpoint(path);

    auto resumed = CompressedStateSimulator::load_checkpoint(path, config);
    EXPECT_EQ(resumed.gate_cursor(), cut);
    resumed.resume_circuit(circuit);
    EXPECT_EQ(resumed.gate_cursor(), circuit.size());
    CQS_EXPECT_STATES_CLOSE(resumed.to_raw(), full.to_raw(), 0.0)
        << "cut at " << cut;
  }
}

TEST_F(CheckpointMatrixTest, V4RejectsCorruptQubitMaps) {
  const std::vector<double> raw(1 << 9, 0.0);  // 8 qubits of zeros

  // Non-permutation tables must fail at load, before any decompression.
  const std::string dup = this->path("map_dup.bin");
  write_legacy_checkpoint(dup, 4, raw, 8, 0, 0,
                          {0, 1, 2, 3, 4, 5, 6, 6});
  EXPECT_THROW(runtime::load_checkpoint(dup), std::runtime_error);

  const std::string oob = this->path("map_oob.bin");
  write_legacy_checkpoint(oob, 4, raw, 8, 0, 0,
                          {0, 1, 2, 3, 4, 5, 6, 63});
  EXPECT_THROW(runtime::load_checkpoint(oob), std::runtime_error);

  // A valid permutation of the wrong width fails at simulator load: the
  // map must cover exactly the checkpoint's qubits.
  const std::string narrow = this->path("map_narrow.bin");
  write_legacy_checkpoint(narrow, 4, raw, 8, 0, 0, {3, 2, 1, 0});
  EXPECT_NO_THROW(runtime::load_checkpoint(narrow));
  EXPECT_THROW(
      CompressedStateSimulator::load_checkpoint(narrow, matrix_config(8)),
      std::invalid_argument);

  // A correct-width permutation loads fine (control case).
  const std::string good = this->path("map_good.bin");
  write_legacy_checkpoint(good, 4, raw, 8, 0, 0,
                          {7, 6, 5, 4, 3, 2, 1, 0});
  auto sim = CompressedStateSimulator::load_checkpoint(good,
                                                       matrix_config(8));
  EXPECT_EQ(sim.qubit_map().physical(0), 7);
}

TEST_F(CheckpointMatrixTest, V3RejectsForeignCodecIdAtLoad) {
  // A v3 block claiming a codec the resume config doesn't hold must fail
  // loudly at load (decompression runs on worker threads, which cannot
  // surface the error), not silently misdecode.
  const auto circuit = circuits::grover_circuit(
      {.data_qubits = 6, .marked_state = 0b001101, .iterations = 2});
  CompressedStateSimulator sim(mixed_config(circuit.num_qubits()));
  sim.apply_circuit(circuit);
  ASSERT_GT(sim.report().final_lossy_blocks, 0u);
  const std::string path = this->path("foreign.bin");
  sim.save_checkpoint(path);

  // Pretend the file came from an sz run: the qzc-compressed payloads
  // keep their codec id 'qzc', which an sz simulator cannot decode.
  auto [header, stores] = runtime::load_checkpoint(path);
  header.codec_name = "sz";
  const std::string rewritten = this->path("foreign_sz.bin");
  runtime::save_checkpoint(rewritten, header, stores);

  EXPECT_THROW(CompressedStateSimulator::load_checkpoint(
                   rewritten, mixed_config(circuit.num_qubits())),
               std::invalid_argument);
}

TEST_F(CheckpointMatrixTest, KilledMidSaveLeavesOldCheckpointIntact) {
  // The save writes <path>.tmp, fsyncs, then renames. Dying mid-image
  // (injected after a byte budget) must throw, leave no temporary behind,
  // and — crucially — leave the previous checkpoint loadable.
  const auto circuit = circuits::qft_circuit({.num_qubits = 8});
  CompressedStateSimulator sim(matrix_config(8));
  sim.apply_circuit(circuit);
  const auto expected = sim.to_raw();

  const std::string path = this->path("durable.bin");
  sim.save_checkpoint(path);
  const auto good_size = std::filesystem::file_size(path);

  // Evolve the state so the interrupted second save would have written a
  // genuinely different image.
  qsim::Circuit more(8);
  more.h(3).cx(3, 5).t(0);
  sim.apply_circuit(more);

  runtime::testing::set_checkpoint_write_limit(good_size / 2);
  EXPECT_THROW(sim.save_checkpoint(path), std::exception);
  runtime::testing::set_checkpoint_write_limit(
      std::numeric_limits<std::uint64_t>::max());

  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "failed save must clean up its temporary";
  EXPECT_EQ(std::filesystem::file_size(path), good_size);
  auto restored =
      CompressedStateSimulator::load_checkpoint(path, matrix_config(8));
  CQS_EXPECT_STATES_CLOSE(restored.to_raw(), expected, 0.0);

  // With the limit lifted the interrupted save succeeds as-is.
  sim.save_checkpoint(path);
  auto latest =
      CompressedStateSimulator::load_checkpoint(path, matrix_config(8));
  CQS_EXPECT_STATES_CLOSE(latest.to_raw(), sim.to_raw(), 0.0);
}

/// First 8 bytes of the file — the format magic.
std::string read_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  in.read(magic, 8);
  return std::string(magic, 8);
}

TEST_F(CheckpointMatrixTest, PreV6ImagesRejectPostV5CodecIds) {
  // A v<=5 image predates every codec id past fpzip (6): a block claiming
  // "zfp-rans" (7) is corruption and must be rejected cleanly, not routed
  // into a codec the image's vintage could never have produced.
  const std::vector<double> raw(1 << 9, 0.0);  // 8 qubits of zeros
  const std::uint8_t rans_id = compression::codec_id("zfp-rans");
  for (int version : {3, 4, 5}) {
    const std::string path =
        this->path("rans_id_v" + std::to_string(version) + ".bin");
    write_legacy_checkpoint(path, version, raw, 8, 0, 0, {}, rans_id);
    try {
      runtime::load_checkpoint(path);
      FAIL() << "v" << version << " image with codec id "
             << int(rans_id) << " was accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("codec id"), std::string::npos)
          << "v" << version << " actual message: " << e.what();
    }
  }
}

TEST_F(CheckpointMatrixTest, ZfpRansStatesSaveAsV6AndRoundTrip) {
  const auto circuit =
      circuits::qft_circuit({.num_qubits = 8, .random_input = true});

  // A lossy zfp state still fits the v5 registry: the save must keep the
  // v5 magic byte-for-byte so older readers stay compatible.
  SimConfig zfp_config = matrix_config(8);
  zfp_config.codec = "zfp";
  zfp_config.initial_level = 1;
  CompressedStateSimulator zfp_sim(zfp_config);
  zfp_sim.apply_circuit(circuit);
  const std::string zfp_path = this->path("zfp_v5.bin");
  zfp_sim.save_checkpoint(zfp_path);
  EXPECT_EQ(read_magic(zfp_path), "CQSCKPT5");

  // The same run under zfp-rans stores codec id 7 somewhere, which must
  // flip the image to v6 — and the v6 loader must resume it exactly.
  SimConfig rans_config = matrix_config(8);
  rans_config.codec = "zfp-rans";
  rans_config.initial_level = 1;
  CompressedStateSimulator sim(rans_config);
  sim.apply_circuit(circuit);
  const auto report = sim.report();
  ASSERT_GT(report.final_lossy_blocks, 0u)
      << "fixture run produced no zfp-rans block; v6 never exercised";
  const std::string path = this->path("rans_v6.bin");
  sim.save_checkpoint(path);
  EXPECT_EQ(read_magic(path), "CQSCKPT6");

  auto resumed =
      CompressedStateSimulator::load_checkpoint(path, rans_config);
  CQS_EXPECT_STATES_CLOSE(resumed.to_raw(), sim.to_raw(), 0.0);
  EXPECT_EQ(resumed.report().lossy_passes, report.lossy_passes);
}

}  // namespace
}  // namespace cqs
